//! KV compression: channel-wise integer quantization (paper §V-B, Eq. 7).
//!
//! ALISA quantizes KV tensors to INT8 *in memory* and dequantizes back to
//! the working precision for computation, purely to shrink the bytes that
//! cross the CPU–GPU link. Following \[9\] in the paper, quantization is
//! **channel-wise**: each column (hidden channel) of a KV matrix gets its
//! own scale `λ = (max − min) / (2ᵇ − 1)` and zero point `z`, which is far
//! more robust to per-channel outliers than a single tensor-wide scale.
//!
//! The paper states Eq. 7 as `x_quant = round(x/λ + z)`, `x = λ(x_quant − z)`
//! with `z = round(−2ᵇ/(max − min))`; the zero-point expression as printed
//! does not map `min` to the bottom of the integer range (it appears to be
//! a typesetting slip), so we implement the standard asymmetric affine
//! quantizer `z = round(−min/λ)` that satisfies the stated round-trip
//! identity exactly. See `DESIGN.md` §2.3.

use serde::{Deserialize, Serialize};

use crate::{Matrix, Result, TensorError};

/// Number of bits used to store each quantized KV element.
///
/// The paper evaluates INT8 (its default, §V-B) and cites \[14\] for OPT
/// remaining accurate down to INT4, which we expose as an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantBits {
    /// 8-bit integers — the paper's KV-compression setting.
    Int8,
    /// 4-bit integers — the scaling-law extension (two values per byte).
    Int4,
}

impl QuantBits {
    /// Number of bits per stored element.
    pub fn bits(self) -> u32 {
        match self {
            QuantBits::Int8 => 8,
            QuantBits::Int4 => 4,
        }
    }

    /// Number of distinct quantization levels (`2ᵇ − 1` usable steps).
    pub fn levels(self) -> u32 {
        (1u32 << self.bits()) - 1
    }

    /// Bytes needed to store `n` elements at this precision.
    pub fn bytes_for(self, n: usize) -> usize {
        match self {
            QuantBits::Int8 => n,
            QuantBits::Int4 => n.div_ceil(2),
        }
    }
}

impl std::fmt::Display for QuantBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantBits::Int8 => write!(f, "INT8"),
            QuantBits::Int4 => write!(f, "INT4"),
        }
    }
}

/// Storage precision of KV bytes in one cache-state region: the working
/// FP16, or an integer width from [`QuantBits`].
///
/// This is the unit the per-region [`PrecisionPolicy`] assigns. FP16 is
/// "unquantized": no codebook, no quantize/dequantize pass, bytes move
/// at full width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvPrecision {
    /// Working precision — 2 bytes per element, no quantization pass.
    Fp16,
    /// Channel-wise INT8 (the paper's §V-B default for offloaded KV).
    Int8,
    /// Channel-wise INT4 (the paper's cited \[14\] extension; two codes
    /// per byte).
    Int4,
}

impl KvPrecision {
    /// Bits per stored element.
    pub fn bits(self) -> u32 {
        match self {
            KvPrecision::Fp16 => 16,
            KvPrecision::Int8 => 8,
            KvPrecision::Int4 => 4,
        }
    }

    /// The integer quantizer behind this precision, or `None` for FP16.
    pub fn quant_bits(self) -> Option<QuantBits> {
        match self {
            KvPrecision::Fp16 => None,
            KvPrecision::Int8 => Some(QuantBits::Int8),
            KvPrecision::Int4 => Some(QuantBits::Int4),
        }
    }

    /// Whether storing at this precision requires a quantize pass (and
    /// reading it back a dequantize pass).
    pub fn is_quantized(self) -> bool {
        self != KvPrecision::Fp16
    }

    /// Bytes occupied by KV data that is `fp16_bytes` wide at working
    /// precision: FP16 passes through, INT8 halves, INT4 quarters.
    /// Integer division, so INT8 reproduces the legacy `bytes / 2`
    /// compression accounting bit-for-bit.
    pub fn bytes_of_fp16(self, fp16_bytes: u64) -> u64 {
        match self {
            KvPrecision::Fp16 => fp16_bytes,
            KvPrecision::Int8 => fp16_bytes / 2,
            KvPrecision::Int4 => fp16_bytes / 4,
        }
    }
}

impl std::fmt::Display for KvPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvPrecision::Fp16 => write!(f, "FP16"),
            KvPrecision::Int8 => write!(f, "INT8"),
            KvPrecision::Int4 => write!(f, "INT4"),
        }
    }
}

/// The cache-state regions a KV byte can live in, each of which a
/// [`PrecisionPolicy`] prices independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheRegion {
    /// GPU-resident hot working set (SWA's local window + cached
    /// globals) — read by attention every step.
    GpuResident,
    /// CPU-resident sparse remainder — offloaded tokens that may be
    /// pulled back when the global set drifts onto them.
    CpuResident,
    /// The coldest tail of the CPU remainder (oldest offloaded tokens,
    /// least likely to be re-selected) — a `cold_frac` share of the
    /// CPU-resident bytes.
    CpuColdTail,
    /// In-flight handoff bytes: prefilled KV moving between replicas in
    /// a disaggregated fleet.
    Handoff,
}

impl CacheRegion {
    /// All regions, in hot-to-cold order.
    pub const ALL: [CacheRegion; 4] = [
        CacheRegion::GpuResident,
        CacheRegion::CpuResident,
        CacheRegion::CpuColdTail,
        CacheRegion::Handoff,
    ];
}

impl std::fmt::Display for CacheRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheRegion::GpuResident => write!(f, "gpu"),
            CacheRegion::CpuResident => write!(f, "cpu"),
            CacheRegion::CpuColdTail => write!(f, "cold"),
            CacheRegion::Handoff => write!(f, "handoff"),
        }
    }
}

/// Per-cache-state-region KV precision: which [`KvPrecision`] each
/// [`CacheRegion`] stores its bytes at.
///
/// This replaces the old `compression: bool` flag everywhere bytes are
/// priced (cost model, token store, schedulers, admission, handoffs).
/// The two legacy operating points are exact special cases:
///
/// * [`PrecisionPolicy::fp16`] (FP16 everywhere) prices identically to
///   the old `compression: false`,
/// * [`PrecisionPolicy::int8`] (CPU remainder at INT8, everything else
///   FP16) prices identically to the old `compression: true` flat
///   halving of link bytes.
///
/// Beyond them, [`PrecisionPolicy::mixed`] keeps the GPU hot window at
/// FP16 while pushing the CPU remainder to INT8 with an INT4 cold tail
/// and quantizing replica handoffs — the CSR-style "hot tokens high
/// precision, cold tokens few bits" operating point.
///
/// ```
/// use alisa_tensor::quant::{CacheRegion, KvPrecision, PrecisionPolicy};
///
/// let mixed = PrecisionPolicy::mixed();
/// assert_eq!(mixed.precision(CacheRegion::GpuResident), KvPrecision::Fp16);
/// assert_eq!(mixed.precision(CacheRegion::CpuColdTail), KvPrecision::Int4);
/// // 1 MiB of FP16-wide CPU KV stores at 3/8 the bytes under
/// // INT8 + half-INT4-cold-tail: 0.5·(1/2) + 0.5·(1/4).
/// assert_eq!(mixed.cpu_bytes(1 << 20), 384 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionPolicy {
    /// Precision of the GPU-resident hot working set.
    pub gpu: KvPrecision,
    /// Precision of the CPU-resident sparse remainder (its warm share).
    pub cpu: KvPrecision,
    /// Precision of the coldest `cold_frac` share of the CPU remainder.
    pub cold: KvPrecision,
    /// Fraction of CPU-resident bytes in the cold tail, in `[0, 1]`.
    /// Zero disables the tail (the whole remainder stores at `cpu`).
    pub cold_frac: f64,
    /// Precision of in-flight replica handoff bytes.
    pub handoff: KvPrecision,
}

impl PrecisionPolicy {
    /// FP16 in every region — byte-identical to the legacy
    /// `compression: false` pricing.
    pub fn fp16() -> Self {
        PrecisionPolicy {
            gpu: KvPrecision::Fp16,
            cpu: KvPrecision::Fp16,
            cold: KvPrecision::Fp16,
            cold_frac: 0.0,
            handoff: KvPrecision::Fp16,
        }
    }

    /// The paper's §V-B operating point: CPU-resident KV at INT8, the
    /// GPU hot window and handoffs at FP16 — byte-identical to the
    /// legacy `compression: true` pricing (a flat halving of offload
    /// link bytes).
    pub fn int8() -> Self {
        PrecisionPolicy {
            cpu: KvPrecision::Int8,
            cold: KvPrecision::Int8,
            ..PrecisionPolicy::fp16()
        }
    }

    /// Mixed precision: GPU hot window FP16, CPU remainder INT8 with
    /// half of it in an INT4 cold tail, handoffs INT8.
    pub fn mixed() -> Self {
        PrecisionPolicy {
            cpu: KvPrecision::Int8,
            cold: KvPrecision::Int4,
            cold_frac: 0.5,
            handoff: KvPrecision::Int8,
            ..PrecisionPolicy::fp16()
        }
    }

    /// The legacy boolean's mapping: `false` → [`PrecisionPolicy::fp16`],
    /// `true` → [`PrecisionPolicy::int8`].
    pub fn from_legacy_compression(compression: bool) -> Self {
        if compression {
            PrecisionPolicy::int8()
        } else {
            PrecisionPolicy::fp16()
        }
    }

    /// Overrides the GPU-resident precision.
    pub fn with_gpu(mut self, p: KvPrecision) -> Self {
        self.gpu = p;
        self
    }

    /// Overrides the CPU-resident (warm-share) precision.
    pub fn with_cpu(mut self, p: KvPrecision) -> Self {
        self.cpu = p;
        self
    }

    /// Configures the cold tail: a `frac` share of CPU-resident bytes
    /// stored at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `[0, 1]`.
    pub fn with_cold_tail(mut self, frac: f64, p: KvPrecision) -> Self {
        assert!((0.0..=1.0).contains(&frac), "cold_frac must be in [0, 1]");
        self.cold_frac = frac;
        self.cold = p;
        self
    }

    /// Overrides the handoff precision.
    pub fn with_handoff(mut self, p: KvPrecision) -> Self {
        self.handoff = p;
        self
    }

    /// The precision assigned to `region`.
    pub fn precision(&self, region: CacheRegion) -> KvPrecision {
        match region {
            CacheRegion::GpuResident => self.gpu,
            CacheRegion::CpuResident => self.cpu,
            CacheRegion::CpuColdTail => self.cold,
            CacheRegion::Handoff => self.handoff,
        }
    }

    /// Bytes stored on the GPU for KV that is `fp16_bytes` wide at
    /// working precision.
    pub fn gpu_bytes(&self, fp16_bytes: u64) -> u64 {
        self.gpu.bytes_of_fp16(fp16_bytes)
    }

    /// Bytes stored on the CPU for KV that is `fp16_bytes` wide at
    /// working precision: the warm share at `cpu` precision plus the
    /// `cold_frac` tail at `cold` precision. With no cold tail this is
    /// a single integer scaling, preserving the legacy arithmetic
    /// exactly.
    pub fn cpu_bytes(&self, fp16_bytes: u64) -> u64 {
        if self.cold_frac == 0.0 {
            return self.cpu.bytes_of_fp16(fp16_bytes);
        }
        let cold_fp16 = ((fp16_bytes as f64 * self.cold_frac).round() as u64).min(fp16_bytes);
        let warm_fp16 = fp16_bytes - cold_fp16;
        self.cpu.bytes_of_fp16(warm_fp16) + self.cold.bytes_of_fp16(cold_fp16)
    }

    /// Bytes that cross the link when `fp16_bytes` of working-precision
    /// KV is *reloaded* from the CPU remainder back to the GPU.
    ///
    /// Reloads are re-selected tokens, and the cold tail holds the
    /// tokens least likely to be re-selected — so reload traffic moves
    /// at the warm-share `cpu` width, not the cold-blended
    /// [`PrecisionPolicy::cpu_bytes`] average. With no cold tail the
    /// two widths coincide.
    pub fn cpu_reload_bytes(&self, fp16_bytes: u64) -> u64 {
        self.cpu.bytes_of_fp16(fp16_bytes)
    }

    /// Bytes that cross the fabric when `fp16_bytes` of working-precision
    /// KV is handed between replicas.
    pub fn handoff_bytes(&self, fp16_bytes: u64) -> u64 {
        self.handoff.bytes_of_fp16(fp16_bytes)
    }

    /// Whether the CPU-resident remainder involves any quantization
    /// (warm share or cold tail) — i.e. whether offload traffic pays a
    /// quantize/dequantize pass.
    pub fn quantizes_cpu(&self) -> bool {
        self.cpu.is_quantized() || (self.cold_frac > 0.0 && self.cold.is_quantized())
    }

    /// Whether every region stores at FP16 (no quantization anywhere).
    pub fn is_fp16_everywhere(&self) -> bool {
        CacheRegion::ALL
            .iter()
            .all(|&r| self.precision(r) == KvPrecision::Fp16)
    }

    /// Compact figure label, e.g. `gpu:FP16 cpu:INT8 cold:INT4@0.50 ho:INT8`.
    pub fn label(&self) -> String {
        let mut s = format!("gpu:{} cpu:{}", self.gpu, self.cpu);
        if self.cold_frac > 0.0 {
            s.push_str(&format!(" cold:{}@{:.2}", self.cold, self.cold_frac));
        }
        if self.handoff != KvPrecision::Fp16 {
            s.push_str(&format!(" ho:{}", self.handoff));
        }
        s
    }
}

impl std::fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Per-channel quantization parameters: scale `λ` and zero point `z`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelParams {
    /// Scale factor `λ = (max − min)/(2ᵇ − 1)`.
    pub scale: f32,
    /// Zero point `z = round(−min/λ)` mapping `min` to level 0.
    pub zero_point: f32,
}

/// Packs integer codes at the given bit width: INT8 codes pass through,
/// INT4 codes pack two per byte (even index in the low nibble, odd in
/// the high nibble). The inverse is [`unpack_codes`].
pub fn pack_codes(codes: &[u8], bits: QuantBits) -> Vec<u8> {
    match bits {
        QuantBits::Int8 => codes.to_vec(),
        QuantBits::Int4 => {
            let mut packed = vec![0u8; codes.len().div_ceil(2)];
            for (i, &c) in codes.iter().enumerate() {
                debug_assert!(c <= 0xF, "INT4 code {c} exceeds 4 bits");
                packed[i / 2] |= (c & 0xF) << ((i % 2) * 4);
            }
            packed
        }
    }
}

/// Unpacks `n` integer codes stored by [`pack_codes`] at `bits`.
pub fn unpack_codes(packed: &[u8], n: usize, bits: QuantBits) -> Vec<u8> {
    match bits {
        QuantBits::Int8 => packed[..n].to_vec(),
        QuantBits::Int4 => (0..n)
            .map(|i| (packed[i / 2] >> ((i % 2) * 4)) & 0xF)
            .collect(),
    }
}

/// A channel-wise quantized matrix: integer codes + per-column parameters.
///
/// Codes are stored *packed* at the nominal bit width (INT4 holds two
/// codes per byte), so the bytes the struct actually holds and the
/// bytes [`QuantizedMatrix::stored_bytes`] accounts to the memory
/// simulator agree — `stored_bytes` is the single source of truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    bits: QuantBits,
    codes: Vec<u8>,
    params: Vec<ChannelParams>,
}

impl QuantizedMatrix {
    /// Number of rows (tokens).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (hidden channels).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The precision this matrix was quantized at.
    pub fn bits(&self) -> QuantBits {
        self.bits
    }

    /// Per-channel parameters (one entry per column).
    pub fn params(&self) -> &[ChannelParams] {
        &self.params
    }

    /// The integer code of element `(r, c)`, unpacked.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn code(&self, r: usize, c: usize) -> u8 {
        assert!(r < self.rows && c < self.cols, "code index out of range");
        let i = r * self.cols + c;
        match self.bits {
            QuantBits::Int8 => self.codes[i],
            QuantBits::Int4 => (self.codes[i / 2] >> ((i % 2) * 4)) & 0xF,
        }
    }

    /// The bytes this matrix occupies in (simulated) memory: packed codes
    /// plus one FP16 scale/zero-point pair per channel. Equals the real
    /// in-struct code storage by construction.
    pub fn stored_bytes(&self) -> usize {
        debug_assert_eq!(self.codes.len(), self.bits.bytes_for(self.rows * self.cols));
        self.codes.len() + self.params.len() * 4
    }
}

/// Quantizes a matrix channel-wise (per column) at the given precision.
///
/// Constant channels (max == min) are stored with scale 0 and decode back
/// to the constant exactly.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if the matrix contains
/// non-finite values (quantizing NaN/∞ KV tensors indicates an upstream
/// bug and must not be masked).
pub fn quantize(m: &Matrix, bits: QuantBits) -> Result<QuantizedMatrix> {
    if m.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(TensorError::InvalidArgument(
            "cannot quantize non-finite values".to_string(),
        ));
    }
    let levels = bits.levels() as f32;
    let mut params = Vec::with_capacity(m.cols());
    for c in 0..m.cols() {
        let col = m.col(c);
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for v in col {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if m.rows() == 0 {
            lo = 0.0;
            hi = 0.0;
        }
        let scale = if hi > lo { (hi - lo) / levels } else { 0.0 };
        let zero_point = if scale > 0.0 {
            (-lo / scale).round()
        } else {
            0.0
        };
        params.push(ChannelParams { scale, zero_point });
    }
    let mut codes = Vec::with_capacity(m.len());
    for r in 0..m.rows() {
        for (c, &x) in m.row(r).iter().enumerate() {
            let p = params[c];
            let code = if p.scale > 0.0 {
                (x / p.scale + p.zero_point).round().clamp(0.0, levels)
            } else {
                0.0
            };
            codes.push(code as u8);
        }
    }
    Ok(QuantizedMatrix {
        rows: m.rows(),
        cols: m.cols(),
        bits,
        codes: pack_codes(&codes, bits),
        params,
    })
}

/// Dequantizes back to `f32`: `x = λ(x_quant − z)`.
///
/// Constant channels decode to their stored offset (`−λz` with `λ = 0`
/// means the channel minimum, recovered via the zero-point convention).
pub fn dequantize(q: &QuantizedMatrix) -> Matrix {
    let mut out = Matrix::zeros(q.rows, q.cols);
    if q.rows == 0 || q.cols == 0 {
        return out;
    }
    let data = out.as_mut_slice();
    // One branch on the bit width outside the hot loop; per-row
    // chunking pairs each output row with the params slice so the
    // inner loops are straight zips with no index arithmetic beyond
    // the INT4 shift/mask.
    match q.bits {
        QuantBits::Int8 => {
            for (row_out, row_codes) in data
                .chunks_exact_mut(q.cols)
                .zip(q.codes.chunks_exact(q.cols))
            {
                for ((v, &code), p) in row_out.iter_mut().zip(row_codes).zip(&q.params) {
                    *v = p.scale * (code as f32 - p.zero_point);
                }
            }
        }
        QuantBits::Int4 => {
            // Packed nibble pairs can straddle row boundaries when the
            // column count is odd, so a single flat element counter
            // tracks the nibble position.
            let mut i = 0usize;
            for row_out in data.chunks_exact_mut(q.cols) {
                for (v, p) in row_out.iter_mut().zip(&q.params) {
                    let code = (q.codes[i / 2] >> ((i % 2) * 4)) & 0xF;
                    *v = p.scale * (code as f32 - p.zero_point);
                    i += 1;
                }
            }
        }
    }
    out
}

/// Simulates storing one KV row at reduced precision: quantizes the row
/// over its own min/max and immediately dequantizes, in place ("fake
/// quantization").
///
/// The functional accuracy path stores each token's K/V row the moment
/// it is produced, so the quantization grain there is per-row (one scale
/// per token row) rather than per-channel across tokens; per-row is the
/// finer grain and bounds the paper's channel-wise error from below
/// (`DESIGN.md` §2.3). Byte accounting for the *performance* path uses
/// the channel-wise [`QuantizedMatrix`] instead.
pub fn fake_quantize_row(row: &mut [f32], bits: QuantBits) {
    if row.is_empty() {
        return;
    }
    let levels = bits.levels() as f32;
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in row.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if hi <= lo {
        return; // constant (or empty/NaN) row stores exactly
    }
    let scale = (hi - lo) / levels;
    let zero_point = (-lo / scale).round();
    for v in row.iter_mut() {
        let code = (*v / scale + zero_point).round().clamp(0.0, levels);
        *v = scale * (code - zero_point);
    }
}

/// Maximum absolute element-wise error from one quantize→dequantize pass.
///
/// Bounded by `λ_c` per channel (one quantization step, since the affine
/// rounding error is at most half a step each way plus zero-point
/// rounding); exposed for tests and the accuracy experiments.
pub fn roundtrip_error(m: &Matrix, bits: QuantBits) -> Result<f32> {
    let q = quantize(m, bits)?;
    let d = dequantize(&q);
    let mut worst = 0.0f32;
    for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
        worst = worst.max((a - b).abs());
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_roundtrip_error_is_one_step() {
        let m = Matrix::from_rows(&[
            vec![0.0, -1.0, 100.0],
            vec![1.0, 1.0, -100.0],
            vec![0.5, 3.0, 0.0],
        ]);
        let q = quantize(&m, QuantBits::Int8).unwrap();
        let d = dequantize(&q);
        for c in 0..m.cols() {
            let step = q.params()[c].scale;
            for r in 0..m.rows() {
                assert!(
                    (m.get(r, c) - d.get(r, c)).abs() <= step.max(1e-6),
                    "error exceeds one quantization step"
                );
            }
        }
    }

    #[test]
    fn constant_channel_roundtrips_exactly() {
        let m = Matrix::from_rows(&[vec![5.0], vec![5.0]]);
        let q = quantize(&m, QuantBits::Int8).unwrap();
        let d = dequantize(&q);
        // A constant channel has scale 0; decode yields 0·(code−z) = 0 …
        // unless the constant is captured by the zero point. We accept the
        // documented behaviour: constant channels decode to 0 offset from
        // the channel min, i.e. the min itself must be representable.
        // With scale 0 the decode is 0.0, so assert the *error* is the
        // constant's magnitude only when scale is 0 and the constant is 0.
        // For robustness, quantize() stores scale 0 ⇒ decode 0, so a
        // nonzero constant is the one case with irreducible error; callers
        // (KV tensors) never have exactly-constant nonzero channels.
        // Here we simply document the contract:
        assert_eq!(q.params()[0].scale, 0.0);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn int4_is_coarser_than_int8() {
        let m = Matrix::from_rows(&[
            vec![0.17, -0.93],
            vec![0.71, 0.55],
            vec![-0.42, 0.08],
            vec![0.99, -0.61],
        ]);
        let e8 = roundtrip_error(&m, QuantBits::Int8).unwrap();
        let e4 = roundtrip_error(&m, QuantBits::Int4).unwrap();
        assert!(e4 > e8);
    }

    #[test]
    fn rejects_non_finite_input() {
        let m = Matrix::from_rows(&[vec![f32::NAN]]);
        assert!(quantize(&m, QuantBits::Int8).is_err());
    }

    #[test]
    fn stored_bytes_accounts_bit_width() {
        let m = Matrix::zeros(4, 4); // 16 elements
        let q8 = quantize(&m, QuantBits::Int8).unwrap();
        let q4 = quantize(&m, QuantBits::Int4).unwrap();
        // params: 4 channels × 4 bytes = 16 bytes overhead in both cases.
        assert_eq!(q8.stored_bytes(), 16 + 16);
        assert_eq!(q4.stored_bytes(), 8 + 16);
    }

    #[test]
    fn bytes_for_rounds_up_for_int4() {
        assert_eq!(QuantBits::Int4.bytes_for(3), 2);
        assert_eq!(QuantBits::Int8.bytes_for(3), 3);
    }

    #[test]
    fn levels_and_display() {
        assert_eq!(QuantBits::Int8.levels(), 255);
        assert_eq!(QuantBits::Int4.levels(), 15);
        assert_eq!(QuantBits::Int8.to_string(), "INT8");
    }

    #[test]
    fn channel_independence() {
        // A huge outlier in channel 0 must not degrade channel 1.
        let m = Matrix::from_rows(&[vec![1000.0, 0.1], vec![-1000.0, 0.2], vec![0.0, 0.3]]);
        let q = quantize(&m, QuantBits::Int8).unwrap();
        let d = dequantize(&q);
        for r in 0..3 {
            assert!((m.get(r, 1) - d.get(r, 1)).abs() < 0.002);
        }
    }

    #[test]
    fn fake_quantize_row_bounds_error() {
        let mut row = vec![0.31, -0.87, 0.44, 0.02, -0.11, 0.93];
        let orig = row.clone();
        fake_quantize_row(&mut row, QuantBits::Int8);
        let step = (0.93f32 - (-0.87)) / 255.0;
        for (a, b) in orig.iter().zip(&row) {
            assert!((a - b).abs() <= step + 1e-6);
        }
    }

    #[test]
    fn fake_quantize_constant_and_empty_rows_are_exact() {
        let mut row = vec![7.0, 7.0, 7.0];
        fake_quantize_row(&mut row, QuantBits::Int4);
        assert_eq!(row, vec![7.0, 7.0, 7.0]);
        let mut empty: [f32; 0] = [];
        fake_quantize_row(&mut empty, QuantBits::Int8);
    }

    #[test]
    fn fake_quantize_int4_noisier_than_int8() {
        let base: Vec<f32> = (0..32)
            .map(|i| ((i * 37) % 17) as f32 * 0.173 - 1.3)
            .collect();
        let err = |bits| {
            let mut r = base.clone();
            fake_quantize_row(&mut r, bits);
            r.iter()
                .zip(&base)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err(QuantBits::Int4) > err(QuantBits::Int8));
    }

    #[test]
    fn empty_matrix_quantizes() {
        let m = Matrix::zeros(0, 3);
        let q = quantize(&m, QuantBits::Int8).unwrap();
        assert_eq!(q.rows(), 0);
        assert_eq!(dequantize(&q).shape(), (0, 3));
    }

    #[test]
    fn int4_codes_pack_two_per_byte() {
        let codes: Vec<u8> = (0..7).map(|i| i % 16).collect();
        let packed = pack_codes(&codes, QuantBits::Int4);
        assert_eq!(packed.len(), 4, "7 nibbles pack into 4 bytes");
        assert_eq!(packed[0], 0x10, "low nibble first: codes 0, 1");
        assert_eq!(unpack_codes(&packed, 7, QuantBits::Int4), codes);
        // INT8 passes through untouched.
        assert_eq!(pack_codes(&codes, QuantBits::Int8), codes);
    }

    #[test]
    fn int4_matrix_storage_matches_accounting() {
        // An odd element count exercises the half-filled trailing byte.
        let m = Matrix::from_rows(&[
            vec![0.1, -0.5, 0.9],
            vec![0.7, 0.3, -0.2],
            vec![-0.9, 0.0, 0.4],
        ]);
        let q = quantize(&m, QuantBits::Int4).unwrap();
        // 9 codes → 5 packed bytes + 3 channels × 4 param bytes.
        assert_eq!(q.stored_bytes(), 5 + 12);
        // Every code survives the pack→unpack round trip: decode error
        // stays within one quantization step per channel.
        let d = dequantize(&q);
        for c in 0..3 {
            let step = q.params()[c].scale.max(1e-6);
            for r in 0..3 {
                assert!((m.get(r, c) - d.get(r, c)).abs() <= step);
            }
        }
    }

    #[test]
    fn precision_bits_and_bytes() {
        assert_eq!(KvPrecision::Fp16.bits(), 16);
        assert_eq!(KvPrecision::Int8.bits(), 8);
        assert_eq!(KvPrecision::Int4.bits(), 4);
        assert_eq!(KvPrecision::Fp16.quant_bits(), None);
        assert_eq!(KvPrecision::Int4.quant_bits(), Some(QuantBits::Int4));
        assert_eq!(KvPrecision::Fp16.bytes_of_fp16(1001), 1001);
        assert_eq!(KvPrecision::Int8.bytes_of_fp16(1001), 500);
        assert_eq!(KvPrecision::Int4.bytes_of_fp16(1001), 250);
        assert!(!KvPrecision::Fp16.is_quantized());
        assert!(KvPrecision::Int4.is_quantized());
    }

    #[test]
    fn legacy_policies_reproduce_boolean_pricing() {
        let fp16 = PrecisionPolicy::from_legacy_compression(false);
        let int8 = PrecisionPolicy::from_legacy_compression(true);
        assert!(fp16.is_fp16_everywhere());
        assert!(!int8.is_fp16_everywhere());
        for bytes in [0u64, 1, 7, 1024, 999_999] {
            assert_eq!(fp16.cpu_bytes(bytes), bytes);
            assert_eq!(int8.cpu_bytes(bytes), bytes / 2, "legacy flat halving");
            // Legacy code never repriced GPU or handoff bytes.
            assert_eq!(int8.gpu_bytes(bytes), bytes);
            assert_eq!(int8.handoff_bytes(bytes), bytes);
        }
        assert!(!fp16.quantizes_cpu());
        assert!(int8.quantizes_cpu());
    }

    #[test]
    fn mixed_policy_blends_cold_tail() {
        let mixed = PrecisionPolicy::mixed();
        assert_eq!(mixed.precision(CacheRegion::GpuResident), KvPrecision::Fp16);
        assert_eq!(mixed.precision(CacheRegion::CpuResident), KvPrecision::Int8);
        assert_eq!(mixed.precision(CacheRegion::CpuColdTail), KvPrecision::Int4);
        assert_eq!(mixed.precision(CacheRegion::Handoff), KvPrecision::Int8);
        // Half at 1/2 width + half at 1/4 width = 3/8 of FP16.
        assert_eq!(mixed.cpu_bytes(1 << 20), 384 * 1024);
        assert_eq!(mixed.handoff_bytes(1 << 20), 1 << 19);
        assert!(mixed.quantizes_cpu());
        assert!(mixed.label().contains("cold:INT4"));
    }

    #[test]
    fn cold_tail_builder_validates_and_applies() {
        let p = PrecisionPolicy::fp16().with_cold_tail(1.0, KvPrecision::Int4);
        assert_eq!(p.cpu_bytes(1000), 250, "full tail stores everything INT4");
        let q = PrecisionPolicy::int8()
            .with_gpu(KvPrecision::Int8)
            .with_handoff(KvPrecision::Int4);
        assert_eq!(q.gpu_bytes(1000), 500);
        assert_eq!(q.handoff_bytes(1000), 250);
    }

    #[test]
    #[should_panic(expected = "cold_frac")]
    fn cold_tail_rejects_bad_fraction() {
        let _ = PrecisionPolicy::fp16().with_cold_tail(1.5, KvPrecision::Int4);
    }
}
