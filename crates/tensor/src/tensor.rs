//! The [`Matrix`] type: a row-major 2-D `f32` tensor.
//!
//! Every intermediate in the ALISA pipeline — Q/K/V projections, attention
//! weights, gathered sparse KV tensors — is a 2-D matrix (batch and head
//! dimensions are handled by looping at the call site, mirroring how the
//! paper's Algorithm 1 is written per-head). Row-major storage keeps
//! per-token KV rows contiguous, which is what token-level caching moves
//! around.

use serde::{Deserialize, Serialize};

use crate::{Result, TensorError};

/// A dense, row-major 2-D `f32` tensor.
///
/// Rows are the "token" dimension throughout this repository: `K` is
/// `(seq_len, head_dim)`, attention weights are `(q_len, kv_len)`, and a
/// token's KV entry is one row. This makes the token-level gather used by
/// Sparse Window Attention a contiguous-row copy.
///
/// # Example
///
/// ```
/// use alisa_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 2);
/// assert_eq!(m.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every element set to `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from an explicit row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch(format!(
                "buffer of len {} cannot form a {}x{} matrix",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from a slice of equally-long rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths. Intended for literals in
    /// tests and examples; use [`Matrix::from_vec`] for fallible input.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair, convenient for error messages and assertions.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` out into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Appends the rows of `other` below `self`.
    ///
    /// This is the "concatenate stored KV with the new token's KV" step of
    /// KV caching (Figure 2(b) of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ.
    pub fn append_rows(&mut self, other: &Matrix) -> Result<()> {
        if self.cols != other.cols && !self.is_empty() {
            return Err(TensorError::ShapeMismatch(format!(
                "cannot append {}x{} onto {}x{}",
                other.rows, other.cols, self.rows, self.cols
            )));
        }
        if self.is_empty() {
            self.cols = other.cols;
        }
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
        Ok(())
    }

    /// Appends a single row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `row.len() != cols`
    /// (unless the matrix is still empty, in which case the row defines
    /// the column count).
    pub fn push_row(&mut self, row: &[f32]) -> Result<()> {
        if self.rows == 0 {
            self.cols = row.len();
        } else if row.len() != self.cols {
            return Err(TensorError::ShapeMismatch(format!(
                "cannot push row of len {} onto matrix with {} cols",
                row.len(),
                self.cols
            )));
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Returns a new matrix containing the given rows, in order.
    ///
    /// This is the `K[I, :]` / `V[I, :]` gather of Algorithm 1 line 6: the
    /// sparse token indices `I` are packed into a dense tensor so the
    /// subsequent matmuls stay dense and regular.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfRange`] if any index `>= rows`.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Matrix> {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            if src >= self.rows {
                return Err(TensorError::IndexOutOfRange {
                    index: src,
                    len: self.rows,
                });
            }
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        Ok(out)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Returns a sub-matrix of rows `lo..hi` (half-open range).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > rows`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Matrix {
        assert!(lo <= hi && hi <= self.rows, "row range out of bounds");
        Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        }
    }

    /// Frobenius norm (root of sum of squares of all elements).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Element-wise maximum value; `None` for an empty matrix.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Element-wise minimum value; `None` for an empty matrix.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix, ready to have rows pushed into it.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for r in 0..show {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:8.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", cells.join(", "), ellipsis)?;
        }
        if self.rows > show {
            writeln!(f, "  ... ({} more rows)", self.rows - show)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn row_returns_contiguous_slice() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn col_extracts_column() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn append_rows_grows_matrix() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        a.append_rows(&b).unwrap();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn append_rows_rejects_mismatched_cols() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0]]);
        assert!(a.append_rows(&b).is_err());
    }

    #[test]
    fn append_rows_onto_empty_adopts_shape() {
        let mut a = Matrix::default();
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        a.append_rows(&b).unwrap();
        assert_eq!(a.shape(), (1, 2));
    }

    #[test]
    fn push_row_accumulates() {
        let mut m = Matrix::default();
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert!(m.push_row(&[1.0]).is_err());
    }

    #[test]
    fn gather_rows_packs_selected_tokens() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let g = m.gather_rows(&[3, 1]).unwrap();
        assert_eq!(g.row(0), &[3.0]);
        assert_eq!(g.row(1), &[1.0]);
    }

    #[test]
    fn gather_rows_rejects_out_of_range() {
        let m = Matrix::zeros(2, 1);
        let err = m.gather_rows(&[2]).unwrap_err();
        assert_eq!(err, TensorError::IndexOutOfRange { index: 2, len: 2 });
    }

    #[test]
    fn transpose_swaps_dims() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn slice_rows_copies_range() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.get(0, 0), 1.0);
    }

    #[test]
    fn frobenius_norm_matches_hand_value() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_mean() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 6.0]]);
        assert_eq!(m.max(), Some(6.0));
        assert_eq!(m.min(), Some(-2.0));
        assert!((m.mean() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m}").is_empty());
    }
}
