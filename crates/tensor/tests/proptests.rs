//! Property-based tests for the tensor substrate's core invariants.

use alisa_tensor::nn::{softmax, softmax_inplace};
use alisa_tensor::ops::{col_sums, col_sums_range, matmul, matmul_bt};
use alisa_tensor::quant::{dequantize, quantize, QuantBits};
use alisa_tensor::stats::spearman;
use alisa_tensor::topk::{argsort_desc, top_k_indices};
use alisa_tensor::Matrix;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1.0e3f32..1.0e3f32).prop_filter("finite", |v| v.is_finite())
}

fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(finite_f32(), r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    /// Softmax rows always sum to 1 and contain only finite values in [0, 1].
    #[test]
    fn softmax_is_probability_distribution(row in proptest::collection::vec(finite_f32(), 1..64)) {
        let mut s = row.clone();
        softmax_inplace(&mut s);
        let total: f32 = s.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        for &v in &s {
            prop_assert!(v.is_finite());
            prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
        }
    }

    /// Softmax preserves the ordering of the inputs.
    #[test]
    fn softmax_is_monotone(row in proptest::collection::vec(finite_f32(), 2..32)) {
        let s = softmax(&row);
        for i in 0..row.len() {
            for j in 0..row.len() {
                if row[i] > row[j] {
                    prop_assert!(s[i] >= s[j] - 1e-6);
                }
            }
        }
    }

    /// Quantize→dequantize error is bounded by one quantization step per channel.
    #[test]
    fn quant_roundtrip_error_bounded(m in matrix(12)) {
        let q = quantize(&m, QuantBits::Int8).unwrap();
        let d = dequantize(&q);
        for c in 0..m.cols() {
            let step = q.params()[c].scale;
            for r in 0..m.rows() {
                let err = (m.get(r, c) - d.get(r, c)).abs();
                // One full step of slack: half-step rounding plus
                // zero-point rounding. Constant channels decode to 0.
                if step > 0.0 {
                    prop_assert!(err <= step + 1e-3, "err {} > step {}", err, step);
                }
            }
        }
    }

    /// INT4 accounting is never larger than INT8 accounting.
    #[test]
    fn int4_stores_fewer_bytes(m in matrix(8)) {
        let q8 = quantize(&m, QuantBits::Int8).unwrap();
        let q4 = quantize(&m, QuantBits::Int4).unwrap();
        prop_assert!(q4.stored_bytes() <= q8.stored_bytes());
    }

    /// top_k returns exactly k distinct, in-range, ascending indices.
    #[test]
    fn top_k_indices_are_valid(xs in proptest::collection::vec(finite_f32(), 1..64), k in 0usize..64) {
        let idx = top_k_indices(&xs, k);
        prop_assert_eq!(idx.len(), k.min(xs.len()));
        for w in idx.windows(2) {
            prop_assert!(w[0] < w[1], "indices must be strictly ascending");
        }
        for &i in &idx {
            prop_assert!(i < xs.len());
        }
        // Every selected value is >= every unselected value.
        if !idx.is_empty() {
            let selected_min = idx.iter().map(|&i| xs[i]).fold(f32::INFINITY, f32::min);
            for (i, &v) in xs.iter().enumerate() {
                if !idx.contains(&i) {
                    prop_assert!(v <= selected_min + 1e-6);
                }
            }
        }
    }

    /// argsort_desc is a permutation that orders values descending.
    #[test]
    fn argsort_desc_is_permutation(xs in proptest::collection::vec(finite_f32(), 1..64)) {
        let order = argsort_desc(&xs);
        let mut seen = vec![false; xs.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in order.windows(2) {
            prop_assert!(xs[w[0]] >= xs[w[1]]);
        }
    }

    /// matmul_bt(a, b) == matmul(a, bᵀ).
    #[test]
    fn matmul_bt_matches_transpose(
        a in matrix(6),
        rows_b in 1usize..6,
    ) {
        let b = Matrix::from_vec(
            rows_b,
            a.cols(),
            (0..rows_b * a.cols()).map(|i| (i as f32 * 0.37).sin()).collect(),
        ).unwrap();
        let lhs = matmul_bt(&a, &b).unwrap();
        let rhs = matmul(&a, &b.transpose()).unwrap();
        prop_assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Column sums over the full range match col_sums.
    #[test]
    fn col_sums_range_full_equals_col_sums(m in matrix(8)) {
        let full = col_sums_range(&m, 0, m.rows());
        let direct = col_sums(&m);
        for (x, y) in full.iter().zip(&direct) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Spearman is symmetric and bounded in [-1, 1].
    #[test]
    fn spearman_symmetric_bounded(
        a in proptest::collection::vec(finite_f32(), 3..32),
    ) {
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let r1 = spearman(&a, &b);
        let r2 = spearman(&b, &a);
        prop_assert!((r1 - r2).abs() < 1e-5);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&r1));
    }

    /// gather_rows returns rows identical to the source.
    #[test]
    fn gather_rows_copies_exact_rows(m in matrix(10)) {
        let indices: Vec<usize> = (0..m.rows()).rev().collect();
        let g = m.gather_rows(&indices).unwrap();
        for (dst, &src) in indices.iter().enumerate() {
            prop_assert_eq!(g.row(dst), m.row(src));
        }
    }
}
