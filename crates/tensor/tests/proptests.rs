//! Property-based tests for the tensor substrate's core invariants.

use alisa_tensor::nn::{softmax, softmax_inplace};
use alisa_tensor::ops::{col_sums, col_sums_range, matmul, matmul_bt};
use alisa_tensor::quant::{
    dequantize, pack_codes, quantize, unpack_codes, KvPrecision, PrecisionPolicy, QuantBits,
};
use alisa_tensor::stats::spearman;
use alisa_tensor::topk::{argsort_desc, top_k_indices};
use alisa_tensor::Matrix;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1.0e3f32..1.0e3f32).prop_filter("finite", |v| v.is_finite())
}

fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(finite_f32(), r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    /// Softmax rows always sum to 1 and contain only finite values in [0, 1].
    #[test]
    fn softmax_is_probability_distribution(row in proptest::collection::vec(finite_f32(), 1..64)) {
        let mut s = row.clone();
        softmax_inplace(&mut s);
        let total: f32 = s.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        for &v in &s {
            prop_assert!(v.is_finite());
            prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
        }
    }

    /// Softmax preserves the ordering of the inputs.
    #[test]
    fn softmax_is_monotone(row in proptest::collection::vec(finite_f32(), 2..32)) {
        let s = softmax(&row);
        for i in 0..row.len() {
            for j in 0..row.len() {
                if row[i] > row[j] {
                    prop_assert!(s[i] >= s[j] - 1e-6);
                }
            }
        }
    }

    /// Quantize→dequantize error is bounded by one quantization step per channel.
    #[test]
    fn quant_roundtrip_error_bounded(m in matrix(12)) {
        let q = quantize(&m, QuantBits::Int8).unwrap();
        let d = dequantize(&q);
        for c in 0..m.cols() {
            let step = q.params()[c].scale;
            for r in 0..m.rows() {
                let err = (m.get(r, c) - d.get(r, c)).abs();
                // One full step of slack: half-step rounding plus
                // zero-point rounding. Constant channels decode to 0.
                if step > 0.0 {
                    prop_assert!(err <= step + 1e-3, "err {} > step {}", err, step);
                }
            }
        }
    }

    /// INT4 accounting is never larger than INT8 accounting.
    #[test]
    fn int4_stores_fewer_bytes(m in matrix(8)) {
        let q8 = quantize(&m, QuantBits::Int8).unwrap();
        let q4 = quantize(&m, QuantBits::Int4).unwrap();
        prop_assert!(q4.stored_bytes() <= q8.stored_bytes());
    }

    /// top_k returns exactly k distinct, in-range, ascending indices.
    #[test]
    fn top_k_indices_are_valid(xs in proptest::collection::vec(finite_f32(), 1..64), k in 0usize..64) {
        let idx = top_k_indices(&xs, k);
        prop_assert_eq!(idx.len(), k.min(xs.len()));
        for w in idx.windows(2) {
            prop_assert!(w[0] < w[1], "indices must be strictly ascending");
        }
        for &i in &idx {
            prop_assert!(i < xs.len());
        }
        // Every selected value is >= every unselected value.
        if !idx.is_empty() {
            let selected_min = idx.iter().map(|&i| xs[i]).fold(f32::INFINITY, f32::min);
            for (i, &v) in xs.iter().enumerate() {
                if !idx.contains(&i) {
                    prop_assert!(v <= selected_min + 1e-6);
                }
            }
        }
    }

    /// argsort_desc is a permutation that orders values descending.
    #[test]
    fn argsort_desc_is_permutation(xs in proptest::collection::vec(finite_f32(), 1..64)) {
        let order = argsort_desc(&xs);
        let mut seen = vec![false; xs.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in order.windows(2) {
            prop_assert!(xs[w[0]] >= xs[w[1]]);
        }
    }

    /// matmul_bt(a, b) == matmul(a, bᵀ).
    #[test]
    fn matmul_bt_matches_transpose(
        a in matrix(6),
        rows_b in 1usize..6,
    ) {
        let b = Matrix::from_vec(
            rows_b,
            a.cols(),
            (0..rows_b * a.cols()).map(|i| (i as f32 * 0.37).sin()).collect(),
        ).unwrap();
        let lhs = matmul_bt(&a, &b).unwrap();
        let rhs = matmul(&a, &b.transpose()).unwrap();
        prop_assert_eq!(lhs.shape(), rhs.shape());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Column sums over the full range match col_sums.
    #[test]
    fn col_sums_range_full_equals_col_sums(m in matrix(8)) {
        let full = col_sums_range(&m, 0, m.rows());
        let direct = col_sums(&m);
        for (x, y) in full.iter().zip(&direct) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Spearman is symmetric and bounded in [-1, 1].
    #[test]
    fn spearman_symmetric_bounded(
        a in proptest::collection::vec(finite_f32(), 3..32),
    ) {
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let r1 = spearman(&a, &b);
        let r2 = spearman(&b, &a);
        prop_assert!((r1 - r2).abs() < 1e-5);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&r1));
    }

    /// gather_rows returns rows identical to the source.
    #[test]
    fn gather_rows_copies_exact_rows(m in matrix(10)) {
        let indices: Vec<usize> = (0..m.rows()).rev().collect();
        let g = m.gather_rows(&indices).unwrap();
        for (dst, &src) in indices.iter().enumerate() {
            prop_assert_eq!(g.row(dst), m.row(src));
        }
    }
}

fn precisions() -> [KvPrecision; 3] {
    // Widest to narrowest: byte accounting must be monotone along this.
    [KvPrecision::Fp16, KvPrecision::Int8, KvPrecision::Int4]
}

proptest! {
    /// Accounted KV bytes are monotone non-increasing in bit-width for
    /// every region split: whichever region's precision is narrowed —
    /// GPU hot window, CPU warm share, cold tail, or handoff — and for
    /// any cold-tail fraction, the stored/shipped bytes never grow.
    #[test]
    fn region_bytes_monotone_in_bit_width(
        fp16_bytes in 0u64..(1u64 << 40),
        cold_frac in 0.0f64..1.0,
    ) {
        let ps = precisions();
        for w in ps.windows(2) {
            let (wide, narrow) = (w[0], w[1]);
            prop_assert!(narrow.bytes_of_fp16(fp16_bytes) <= wide.bytes_of_fp16(fp16_bytes));
            // GPU region.
            let g_wide = PrecisionPolicy::fp16().with_gpu(wide);
            let g_narrow = PrecisionPolicy::fp16().with_gpu(narrow);
            prop_assert!(g_narrow.gpu_bytes(fp16_bytes) <= g_wide.gpu_bytes(fp16_bytes));
            // Handoff region.
            let h_wide = PrecisionPolicy::fp16().with_handoff(wide);
            let h_narrow = PrecisionPolicy::fp16().with_handoff(narrow);
            prop_assert!(h_narrow.handoff_bytes(fp16_bytes) <= h_wide.handoff_bytes(fp16_bytes));
            // CPU warm share, at every cold-tail split and tail width.
            for cold in ps {
                let c_wide = PrecisionPolicy::fp16()
                    .with_cpu(wide)
                    .with_cold_tail(cold_frac, cold);
                let c_narrow = PrecisionPolicy::fp16()
                    .with_cpu(narrow)
                    .with_cold_tail(cold_frac, cold);
                prop_assert!(
                    c_narrow.cpu_bytes(fp16_bytes) <= c_wide.cpu_bytes(fp16_bytes),
                    "warm {wide}->{narrow} grew bytes at cold_frac {cold_frac}"
                );
                // Narrowing the tail itself is monotone too.
                let t_wide = PrecisionPolicy::fp16().with_cold_tail(cold_frac, wide);
                let t_narrow = PrecisionPolicy::fp16().with_cold_tail(cold_frac, narrow);
                prop_assert!(t_narrow.cpu_bytes(fp16_bytes) <= t_wide.cpu_bytes(fp16_bytes));
            }
        }
        // The mixed policy never accounts more than flat INT8, which
        // never accounts more than FP16 — the fig15 ordering.
        let fp16 = PrecisionPolicy::fp16().cpu_bytes(fp16_bytes);
        let int8 = PrecisionPolicy::int8().cpu_bytes(fp16_bytes);
        let mixed = PrecisionPolicy::mixed().cpu_bytes(fp16_bytes);
        prop_assert!(mixed <= int8 && int8 <= fp16);
    }

    /// INT4 packing round-trips every code value: two codes per byte in,
    /// the same codes back out, at exactly the accounted byte count.
    #[test]
    fn int4_pack_unpack_round_trips_all_codes(
        codes in proptest::collection::vec(0u8..16, 0..257),
    ) {
        let packed = pack_codes(&codes, QuantBits::Int4);
        prop_assert_eq!(packed.len(), QuantBits::Int4.bytes_for(codes.len()));
        prop_assert_eq!(unpack_codes(&packed, codes.len(), QuantBits::Int4), codes.clone());
        // INT8 is the identity.
        let packed8 = pack_codes(&codes, QuantBits::Int8);
        prop_assert_eq!(unpack_codes(&packed8, codes.len(), QuantBits::Int8), codes);
    }

    /// A quantized matrix's in-struct storage equals its accounted
    /// bytes, and every unpacked code is a valid level.
    #[test]
    fn quantized_matrix_storage_agrees_with_accounting(m in matrix(12)) {
        for bits in [QuantBits::Int8, QuantBits::Int4] {
            let q = quantize(&m, bits).unwrap();
            prop_assert_eq!(
                q.stored_bytes(),
                bits.bytes_for(m.rows() * m.cols()) + m.cols() * 4
            );
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    prop_assert!((q.code(r, c) as u32) <= bits.levels());
                }
            }
        }
    }
}
