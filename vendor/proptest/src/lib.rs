//! Offline stand-in for `proptest`.
//!
//! Supports the strategy combinators and macros this workspace's
//! property tests use: numeric-range strategies, tuples, `prop_map`,
//! `prop_flat_map`, `prop_filter`, `collection::vec`, `Just`, the
//! `proptest!` macro with an optional `#![proptest_config(..)]` header,
//! and `prop_assert!`/`prop_assert_eq!`. Unlike the real proptest it
//! does not shrink failing inputs — a failure panics with the usual
//! assertion message, and the deterministic per-test RNG seed makes
//! every failure reproducible.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// The RNG threaded through strategies by the `proptest!` macro.
    pub type TestRng = StdRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing `pred`, retrying (bounded) instead of
        /// shrinking.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
        }
    }

    /// Always produces a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    macro_rules! numeric_range_incl_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(usize, u64, u32, u16, u8, i64, i32, f32, f64);
    numeric_range_incl_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-loop configuration.

    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Mirror of proptest's config; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test RNG: seeded from the test's path so runs
    /// are reproducible and failures re-fire on re-run.
    pub fn new_rng(test_path: &str) -> TestRng {
        TestRng::seed_from_u64(fnv1a(test_path))
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-test entry macro. Each `#[test] fn name(args in strategies)`
/// expands to a plain test that samples `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::new_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Assertion macro; panics (no shrinking) with the standard message.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion macro; panics (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion macro; panics (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in collection::vec((0usize..5).prop_map(|x| x * 2), 1..8),
            (a, b) in (1usize..4, 1usize..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert!(a < 4 && b < 4);
            let exact = collection::vec(Just(7usize), 3);
            let mut rng = crate::test_runner::new_rng("exact");
            prop_assert_eq!(Strategy::generate(&exact, &mut rng), vec![7, 7, 7]);
        }
    }
}
