//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use (`Criterion`, benchmark groups, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros)
//! with a plain wall-clock measurement loop: a short warm-up, then
//! timed batches until a fixed budget elapses. Results are printed and
//! written to `BENCH_<target>.json` next to the working directory so
//! runs leave a comparable perf baseline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-measurement time budget. Small on purpose: these benches are
/// regression tripwires, not publication numbers.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// One collected measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/name`).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the timed iteration loop inside one benchmark.
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly and records the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
        }
        // Measure.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET {
            black_box(f());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.iters = iters.max(1);
        self.ns_per_iter = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

/// Top-level benchmark registry, passed to every group function.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!(
            "bench {id:<48} {:>14.1} ns/iter ({} iters)",
            b.ns_per_iter, b.iters
        );
        self.results.push(Measurement {
            id,
            ns_per_iter: b.ns_per_iter,
            iters: b.iters,
        });
    }

    /// Writes all collected measurements as JSON to `path`.
    pub fn write_json(&self, path: &str) {
        let mut out = String::from("{\n");
        for (i, m) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "  \"{}\": {{\"ns_per_iter\": {:.1}, \"iters\": {}}}{}\n",
                m.id, m.ns_per_iter, m.iters, comma
            ));
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.criterion.run(format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.criterion
            .run(format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Ends the group (accounting is immediate, so this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Derives `BENCH_<target>.json` from the bench executable's name,
/// stripping cargo's trailing `-<hash>`.
pub fn default_json_path() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let base = exe.rsplit('/').next().unwrap_or("bench");
    let stem = match base.rsplit_once('-') {
        Some((name, suffix))
            if suffix.len() == 16 && suffix.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name
        }
        _ => base,
    };
    format!("BENCH_{stem}.json")
}

/// Declares a group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` running each group then writing the JSON
/// baseline.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.write_json(&$crate::default_json_path());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("matmul", 32).id, "matmul/32");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn json_path_strips_hash() {
        // Can't control argv here; just assert the prefix contract.
        assert!(default_json_path().starts_with("BENCH_"));
    }
}
