//! Offline stand-in for `rand` 0.8.
//!
//! The workspace builds hermetically, so this crate reimplements the
//! slice of the rand 0.8 API the repository uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`. The generator is SplitMix64 — not the
//! real StdRng's ChaCha12, so exact streams differ from upstream rand,
//! but every consumer in this workspace only relies on determinism and
//! reasonable statistical quality, both of which SplitMix64 provides.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly "from all possible values" (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the element type
/// `T` (like real rand) so literal ranges infer their width from the
/// expected output type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching real rand.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand's `Rng: RngCore` extension trait).
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`u: f64 = rng.gen()` style).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's
    /// `StdRng`. Passes through all 2⁶⁴ states; plenty for simulation
    /// and test-data generation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    //! Sequence helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// In-place shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_ranges() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
