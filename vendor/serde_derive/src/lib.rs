//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds in a hermetic environment with no registry
//! access, and nothing in it performs runtime serde serialization — the
//! derives only need to *parse* so the annotated types stay
//! source-compatible with the real serde. Each derive therefore expands
//! to nothing. Swapping in the real `serde`/`serde_derive` requires no
//! source changes: delete the `vendor/` entries from the workspace
//! manifest and point the workspace dependencies at crates.io.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and generates no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and generates no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
