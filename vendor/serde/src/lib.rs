//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (traits and derive
//! macros) so code written against the real serde compiles unchanged in
//! this hermetic workspace. No runtime serialization is provided — the
//! repository's on-disk formats (e.g. `alisa_serve::Trace`) use explicit
//! hand-written text codecs instead, which also gives byte-stable
//! reports for determinism tests.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. The stub derive does not
/// implement it; nothing in this workspace bounds on it.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
