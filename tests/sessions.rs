//! Integration tests for multi-turn sessions and cross-request prefix
//! KV reuse: legacy single-shot traces must round-trip unchanged
//! through the new session-aware parser and reproduce the pre-change
//! golden reports byte-for-byte, while session traces under sticky
//! routing + retention must actually reuse prefixes — and never serve
//! worse than the same fleet without reuse (the `fig16_multi_turn`
//! claim).

use alisa::PrecisionPolicy;
use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, LoadBalancePolicy, PrefillJob, RetentionCfg, Router,
    RouterConfig, ServeConfig, ServeEngine, Trace,
};
use alisa_workloads::{LengthModel, SessionModel};

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn v100_cfg(policy: AdmissionPolicy) -> ServeConfig {
    ServeConfig::new(ModelConfig::opt_6_7b(), HardwareSpec::v100_16gb(), policy)
}

fn legacy_trace(seed: u64) -> Trace {
    Trace::generate(
        &ArrivalProcess::Poisson { rate: 6.0 },
        &LengthModel::alpaca().with_max_output(48),
        50,
        seed,
    )
}

fn chat_trace(rate: f64, sessions: usize, seed: u64) -> Trace {
    Trace::generate_sessions(
        &ArrivalProcess::Poisson { rate },
        &SessionModel::chat().with_max_turns(5),
        sessions,
        seed,
    )
}

/// A legacy single-shot trace parses as 1-turn sessions, re-emits
/// byte-identical v1 text, and — run through the session-aware engine —
/// still reproduces the pre-session golden fixtures byte-for-byte.
#[test]
fn legacy_traces_round_trip_and_reproduce_golden_reports() {
    for seed in [7u64, 42] {
        let trace = legacy_trace(seed);
        assert!(!trace.has_sessions());
        let text = trace.to_text();
        let reparsed = Trace::from_text(&text).unwrap();
        assert_eq!(trace, reparsed, "seed {seed}: parser must not alter");
        assert_eq!(text, reparsed.to_text(), "seed {seed}: text is stable");
        for (precision, fixture) in [
            (
                PrecisionPolicy::fp16(),
                format!("serve_fp16_seed{seed}.txt"),
            ),
            (
                PrecisionPolicy::int8(),
                format!("serve_int8_seed{seed}.txt"),
            ),
        ] {
            let cfg = v100_cfg(AdmissionPolicy::Alisa {
                sparsity: 0.8,
                precision,
            });
            let report = ServeEngine::new(cfg).run(&reparsed);
            assert_eq!(
                report.canonical_text(),
                golden(&fixture),
                "seed {seed}: legacy trace through the new parser diverged from {fixture}"
            );
            assert!(report.reuse.is_none(), "no retention => no reuse block");
        }
    }
}

/// Prefix reuse engages on a session trace: turns whose prefix KV is
/// retained skip its prefill, and the engine reports the hits.
#[test]
fn session_reuse_hits_and_skips_prefill_work() {
    let trace = chat_trace(0.5, 20, 11);
    assert!(trace.has_sessions());
    assert!(trace.len() > 20, "multi-turn sessions expand the trace");
    let base = v100_cfg(AdmissionPolicy::alisa());
    let with = ServeEngine::new(base.clone().with_session_reuse(RetentionCfg::half()));
    let report = with.run(&trace);
    let reuse = report.reuse.expect("retention enabled => stats present");
    assert!(reuse.hits > 0, "follow-up turns must hit retained prefixes");
    assert!(reuse.reused_tokens > 0);
    assert!(reuse.retained >= reuse.hits);
    // Requests carry the per-turn reuse attribution in the report's
    // canonical text only when retention ran.
    assert!(report.canonical_text().contains("reuse hits="));
}

/// The fig16 claim at engine level: same trace, same policy — the
/// retention run's goodput and mean TTFT are never worse than the
/// no-reuse run's.
#[test]
fn reuse_never_hurts_goodput_or_ttft() {
    for (rate, seed) in [(0.3, 3u64), (0.8, 5), (1.5, 9)] {
        let trace = chat_trace(rate, 24, seed);
        let base = v100_cfg(AdmissionPolicy::alisa());
        let without = ServeEngine::new(base.clone()).run(&trace);
        let with = ServeEngine::new(base.with_session_reuse(RetentionCfg::half())).run(&trace);
        assert!(
            with.goodput_rps + 1e-12 >= without.goodput_rps,
            "rate {rate} seed {seed}: reuse goodput {} < no-reuse {}",
            with.goodput_rps,
            without.goodput_rps
        );
        assert!(
            with.ttft.mean <= without.ttft.mean + 1e-12,
            "rate {rate} seed {seed}: reuse mean TTFT {} > no-reuse {}",
            with.ttft.mean,
            without.ttft.mean
        );
    }
}

/// Reuse pricing: a prefill that reuses most of its prompt must cost
/// well under the full prefill, but still more than the bare suffix
/// (the cross-attention over the retained sparse prefix is charged).
#[test]
fn reuse_prefill_pricing_is_between_suffix_and_full() {
    let engine = ServeEngine::new(v100_cfg(AdmissionPolicy::alisa()));
    let full = engine.step_time(&[512], &[]);
    let suffix_only = engine.step_time(&[64], &[]);
    let reused = engine.step_time_sessions(
        &[PrefillJob {
            prompt_len: 512,
            reused_prefix: 448,
        }],
        &[],
    );
    assert!(
        reused < full,
        "reusing 448/512 tokens must beat a full prefill: {reused} vs {full}"
    );
    assert!(
        reused > suffix_only,
        "context attention over the retained prefix must be charged: {reused} vs {suffix_only}"
    );
    // Nothing reused == the legacy pricing path, exactly.
    assert_eq!(
        engine.step_time_sessions(&[PrefillJob::full(512)], &[]),
        full
    );
}

/// Retained bytes respect the configured fraction of the KV budget.
#[test]
fn retention_respects_its_budget_fraction() {
    let trace = chat_trace(2.0, 30, 13);
    let frac = 0.25;
    let cfg = v100_cfg(AdmissionPolicy::alisa()).with_session_reuse(RetentionCfg::new(frac));
    let engine = ServeEngine::new(cfg);
    let report = engine.run(&trace);
    let reuse = report.reuse.unwrap();
    let cap = (engine.kv_budget() as f64 * frac) as u64;
    assert!(
        reuse.peak_retained_bytes <= cap,
        "retained peak {} exceeds cap {cap}",
        reuse.peak_retained_bytes
    );
    assert!(reuse.peak_retained_bytes > 0, "something must be retained");
}

/// Sticky routing keyed on real session ids sends every turn of a
/// session to the replica that retained its prefix — so a sticky fleet
/// sees (almost) every follow-up turn hit, while round-robin scatters
/// turns away from their retained prefixes and hits strictly less.
#[test]
fn sticky_affinity_feeds_reuse_round_robin_starves_it() {
    let trace = chat_trace(1.0, 24, 17);
    let replica = v100_cfg(AdmissionPolicy::alisa()).with_session_reuse(RetentionCfg::half());
    let run = |lb: LoadBalancePolicy| {
        Router::new(RouterConfig::homogeneous(replica.clone(), 3).with_lb(lb))
            .run(&trace)
            .fleet
            .reuse
            .expect("retention on")
    };
    let sticky = run(LoadBalancePolicy::sticky());
    let rr = run(LoadBalancePolicy::RoundRobin);
    assert!(sticky.hits > 0);
    assert!(
        sticky.hits > rr.hits,
        "sticky ({}) must out-hit round-robin ({})",
        sticky.hits,
        rr.hits
    );
}

/// A 1-replica fleet with retention reproduces the retention-enabled
/// single engine byte-for-byte — the reuse logic cannot drift between
/// the two implementations.
#[test]
fn single_replica_router_matches_engine_under_retention() {
    let trace = chat_trace(1.2, 20, 23);
    let cfg = v100_cfg(AdmissionPolicy::alisa()).with_session_reuse(RetentionCfg::half());
    let engine_report = ServeEngine::new(cfg.clone()).run(&trace);
    let router_report = Router::new(RouterConfig::homogeneous(cfg, 1)).run(&trace);
    assert_eq!(
        engine_report.canonical_text().into_bytes(),
        router_report.replicas[0].canonical_text().into_bytes(),
        "1-replica fleet with retention must equal the plain engine"
    );
}

/// Session runs are deterministic per seed, byte-for-byte, and the
/// seed matters.
#[test]
fn session_serving_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let trace = chat_trace(1.0, 18, seed);
        let replica = v100_cfg(AdmissionPolicy::alisa()).with_session_reuse(RetentionCfg::half());
        Router::new(RouterConfig::homogeneous(replica, 2).with_lb(LoadBalancePolicy::sticky()))
            .run(&trace)
            .canonical_text()
    };
    assert_eq!(run(0xBEEF).into_bytes(), run(0xBEEF).into_bytes());
    assert_ne!(run(1), run(2));
}

/// Legacy behaviour of the folded sticky policy is unchanged: single-
/// shot entries still key on their trace index modulo the bucket count.
#[test]
fn folded_sticky_still_pins_legacy_traces_to_one_replica() {
    let trace = legacy_trace(5);
    let router = Router::new(
        RouterConfig::homogeneous(v100_cfg(AdmissionPolicy::alisa()), 4)
            .with_lb(LoadBalancePolicy::Sticky { sessions: 1 }),
    );
    let r = router.run(&trace);
    let non_empty = r.replicas.iter().filter(|x| x.arrived > 0).count();
    assert_eq!(non_empty, 1, "one folded session => one replica");
}
