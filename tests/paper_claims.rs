//! Executable checks of the paper's headline claims, at test-sized
//! scales. Each test names the claim and the paper section it comes
//! from; EXPERIMENTS.md records the full-scale figures.

use alisa_attention::policy::PolicyKind;
use alisa_memsim::HardwareSpec;
use alisa_model::assoc::{AssocModel, AssocSpec};
use alisa_model::engine::{run_with_capture, GenerationConfig};
use alisa_model::{InitSpec, ModelConfig, TinyTransformer};
use alisa_sched::{
    AlisaScheduler, DeepSpeedZeroScheduler, GpuOnlyScheduler, InferenceSystem, VllmScheduler,
    Workload,
};
use alisa_tensor::stats::causal_attention_sparsity;
use alisa_workloads::{evaluate_qa, Dataset, QaTask};

/// §III-B / Figure 3: attention weights are highly sparse, and larger
/// models are sparser.
#[test]
fn claim_attention_is_sparse_and_scales() {
    let mut means = Vec::new();
    for params in [6_700_000_000u64, 30_000_000_000] {
        let init = InitSpec::default().with_concentration_for_params(params);
        let model = TinyTransformer::structured(ModelConfig::tiny_4l(), init);
        let corpus = Dataset::WikiText2.spec(
            model.config().vocab_size,
            init.anchor_count(model.config().vocab_size),
        );
        let tokens = corpus.sequence(0, 160);
        let cap = run_with_capture(&model, &tokens, &GenerationConfig::default());
        let mean: f32 = (0..model.config().num_layers)
            .map(|l| causal_attention_sparsity(&cap.layer_map(l), 0.01, 8))
            .sum::<f32>()
            / model.config().num_layers as f32;
        means.push(mean);
    }
    assert!(
        means[0] > 0.7,
        "6.7B-scale sparsity {:.2} too low",
        means[0]
    );
    assert!(
        means[1] > means[0],
        "30B-scale must be sparser: {:.2} vs {:.2}",
        means[1],
        means[0]
    );
}

/// §VI-B / Figure 8: at 80% KV sparsity, SWA retains QA accuracy where
/// strided attention collapses.
#[test]
fn claim_swa_retains_qa_accuracy_at_80pct() {
    let model = AssocModel::build(&AssocSpec::default());
    let eps = QaTask::Copa.spec().episodes(&model, 12);
    let swa = evaluate_qa(
        &model,
        &eps,
        &GenerationConfig::default().with_policy(PolicyKind::Swa, 0.8),
    );
    let strided = evaluate_qa(
        &model,
        &eps,
        &GenerationConfig::default().with_policy(PolicyKind::Strided, 0.8),
    );
    assert!(swa.accuracy >= 0.8, "SWA accuracy {}", swa.accuracy);
    assert!(
        swa.accuracy > strided.accuracy,
        "SWA {} must beat strided {}",
        swa.accuracy,
        strided.accuracy
    );
}

/// §II-A / Figure 2(c): KV caching keeps decode-step time flat; without
/// it the step time grows with the sequence.
#[test]
fn claim_kv_caching_flattens_step_time() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_32gb();
    let wl = Workload::new(4, 32, 128);
    let cached = GpuOnlyScheduler::with_kv_cache().run(&model, &hw, &wl);
    let uncached = GpuOnlyScheduler::without_kv_cache().run(&model, &hw, &wl);
    let c = cached.timeline.records();
    let u = uncached.timeline.records();
    let c_growth = c[128].total_time() / c[1].total_time();
    let u_growth = u[128].total_time() / u[1].total_time();
    assert!(c_growth < 1.3, "cached growth {c_growth:.2}");
    assert!(
        u_growth > c_growth + 0.5,
        "uncached growth {u_growth:.2} must clearly exceed cached {c_growth:.2}"
    );
}

/// §VI-C / Figure 9: DeepSpeed-ZeRO OOMs at large batch; ALISA completes
/// and outperforms it where both complete.
#[test]
fn claim_zero_ooms_where_alisa_survives() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_16gb();
    let big = Workload::alpaca(64);
    let zero = DeepSpeedZeroScheduler.run(&model, &hw, &big);
    assert!(!zero.outcome.is_completed(), "ZeRO should OOM at b=64");
    let alisa = AlisaScheduler::new(0.8, true).run(&model, &hw, &big);
    assert!(alisa.outcome.is_completed(), "{}", alisa.summary());

    let small = Workload::new(8, 128, 64);
    let zero_s = DeepSpeedZeroScheduler.run(&model, &hw, &small);
    let alisa_s = AlisaScheduler::new(0.8, true).run(&model, &hw, &small);
    assert!(zero_s.outcome.is_completed());
    assert!(alisa_s.throughput() > zero_s.throughput());
}

/// §VI-C: vLLM outperforms ALISA at small batch (fits on GPU, fused
/// kernels); ALISA wins at large batch.
#[test]
fn claim_vllm_small_batch_alisa_large_batch() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_16gb();
    let small = Workload::new(4, 128, 128);
    let v_small = VllmScheduler::new().run(&model, &hw, &small);
    let a_small = AlisaScheduler::new(0.8, true).run(&model, &hw, &small);
    assert!(
        v_small.throughput() > a_small.throughput(),
        "vLLM must win at b=4: {:.0} vs {:.0}",
        v_small.throughput(),
        a_small.throughput()
    );

    let large = Workload::new(64, 128, 256);
    let v_large = VllmScheduler::new().run(&model, &hw, &large);
    let a_large = AlisaScheduler::new(0.8, true).run(&model, &hw, &large);
    assert!(
        a_large.throughput() > v_large.throughput(),
        "ALISA must win at b=64: {:.0} vs {:.0}",
        a_large.throughput(),
        v_large.throughput()
    );
}

/// §V-A / Figure 12(b): recomputation reduces total execution time in
/// the memory-pressured regime.
#[test]
fn claim_recomputation_pays_off() {
    let model = ModelConfig::opt_30b();
    let hw = HardwareSpec::h100_80gb();
    let wl = Workload::new(64, 128, 256);
    let on = AlisaScheduler::new(0.4, true).run(&model, &hw, &wl);
    let off = AlisaScheduler::new(0.4, true)
        .without_recompute()
        .run(&model, &hw, &wl);
    assert!(on.outcome.is_completed() && off.outcome.is_completed());
    assert!(
        on.total_time() < off.total_time(),
        "recompute ON {:.1}s must beat OFF {:.1}s",
        on.total_time(),
        off.total_time()
    );
}

/// Figure 1: the b=64, s=512, n=512 workload OOMs GPU-only on a 32 GB
/// V100 but completes under ALISA.
#[test]
fn claim_fig1_oom_resolved_by_alisa() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_32gb();
    let wl = Workload::fig1_workload2();
    let gpu_only = GpuOnlyScheduler::with_kv_cache().run(&model, &hw, &wl);
    assert!(!gpu_only.outcome.is_completed());
    let alisa = AlisaScheduler::new(0.8, true).run(&model, &hw, &wl);
    assert!(alisa.outcome.is_completed(), "{}", alisa.summary());
}
