//! Integration tests of the dynamic-fleet layer (PR 9): golden
//! fixtures pinning the canonical report of a failure-injected run and
//! an autoscaled run byte-for-byte, plus the lifecycle properties the
//! event stream must uphold:
//!
//! * a drained or failed replica never admits new work after the
//!   drain/kill instant (until a later scale-up revives it);
//! * every session in flight on a replica at its failure time
//!   terminates exactly once — finished on a survivor or rejected with
//!   a reason — never silently lost;
//! * seeded failure plans and autoscaled runs are deterministic at any
//!   step-thread count, so the fixtures hold regardless of host.

use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_obs::EventKind;
use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, AutoscalerCfg, FailurePlan, LoadBalancePolicy, MemorySink,
    Router, RouterConfig, ServeConfig, Trace,
};
use alisa_workloads::LengthModel;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn v100_config() -> ServeConfig {
    ServeConfig::new(
        ModelConfig::opt_6_7b(),
        HardwareSpec::v100_16gb(),
        AdmissionPolicy::alisa(),
    )
}

fn steady_trace(n: usize, seed: u64) -> Trace {
    Trace::generate(
        &ArrivalProcess::Poisson { rate: 40.0 },
        &LengthModel::alpaca().with_max_output(64),
        n,
        seed,
    )
}

fn diurnal_trace(n: usize, seed: u64) -> Trace {
    Trace::generate(
        &ArrivalProcess::Diurnal {
            rate: 40.0,
            swing: 0.9,
            period_s: 24.0,
        },
        &LengthModel::alpaca().with_max_output(64),
        n,
        seed,
    )
}

/// The failure fixture: 3 replicas, two kills at fixed times.
fn failure_router() -> Router {
    Router::new(
        RouterConfig::homogeneous(v100_config(), 3)
            .with_lb(LoadBalancePolicy::LeastOutstanding)
            .with_failures(FailurePlan::at(&[(1.5, 1), (3.0, 0)])),
    )
}

/// The autoscaler fixture: ceiling 4, floor 1, fast cadence.
fn autoscaled_router(threads: usize) -> Router {
    Router::new(
        RouterConfig::homogeneous(v100_config(), 4)
            .with_lb(LoadBalancePolicy::LeastOutstanding)
            .with_autoscaler(AutoscalerCfg::new(1).with_cadence(1.0, 4.0))
            .with_step_threads(threads),
    )
}

#[test]
fn failure_run_matches_golden_fixture() {
    let report = failure_router().run(&steady_trace(160, 42));
    assert_eq!(
        report.canonical_text(),
        golden("fleet_failure_seed42.txt"),
        "failure-injected canonical report drifted from the committed fixture \
         (regenerate with `cargo test --test fleet -- --ignored` if intentional)"
    );
}

#[test]
fn autoscaled_run_matches_golden_fixture_at_any_thread_count() {
    let trace = diurnal_trace(1100, 42);
    for threads in [1, 4] {
        let report = autoscaled_router(threads).run(&trace);
        assert_eq!(
            report.canonical_text(),
            golden("fleet_autoscaled_seed42.txt"),
            "autoscaled canonical report drifted at {threads} step threads \
             (regenerate with `cargo test --test fleet -- --ignored` if intentional)"
        );
    }
}

/// Rewrites both fixtures from the current implementation. Ignored so
/// a normal test run can never bless its own regression; run
/// explicitly after an intentional output change:
/// `cargo test --test fleet -- --ignored`.
#[test]
#[ignore]
fn regenerate_golden_fixtures() {
    let dir = format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(
        format!("{dir}/fleet_failure_seed42.txt"),
        failure_router()
            .run(&steady_trace(160, 42))
            .canonical_text(),
    )
    .expect("write failure fixture");
    std::fs::write(
        format!("{dir}/fleet_autoscaled_seed42.txt"),
        autoscaled_router(1)
            .run(&diurnal_trace(1100, 42))
            .canonical_text(),
    )
    .expect("write autoscaler fixture");
}

#[test]
fn drained_or_failed_replica_never_admits_afterwards() {
    // One traced run with both dynamics active: an autoscaler that
    // drains in the trough and a kill near the peak.
    let trace = diurnal_trace(1100, 42);
    let router = Router::new(
        RouterConfig::homogeneous(v100_config(), 4)
            .with_lb(LoadBalancePolicy::LeastOutstanding)
            .with_autoscaler(AutoscalerCfg::new(1).with_cadence(1.0, 4.0))
            .with_failures(FailurePlan::at(&[(12.0, 3)])),
    );
    let mut sink = MemorySink::new();
    let _ = router.run_traced(&trace, &mut sink);
    // Replica availability as the event stream tells it: admitting
    // until drained or failed, admitting again on replica-up.
    let mut admitting = [true; 4];
    let mut saw_lifecycle_events = 0;
    for e in sink.events() {
        match &e.kind {
            EventKind::ReplicaUp { .. } => {
                admitting[e.replica.expect("replica-up is replica-local")] = true;
                saw_lifecycle_events += 1;
            }
            EventKind::ReplicaDrained { .. } | EventKind::ReplicaFailed { .. } => {
                admitting[e.replica.expect("lifecycle events are replica-local")] = false;
                saw_lifecycle_events += 1;
            }
            EventKind::Dispatch { target, .. } => {
                assert!(
                    admitting[*target],
                    "request {:?} dispatched to non-admitting replica {target} at t={}",
                    e.request, e.t
                );
            }
            EventKind::SessionRecovered { to, .. } => {
                assert!(
                    admitting[*to],
                    "request {:?} recovered onto non-admitting replica {to} at t={}",
                    e.request, e.t
                );
            }
            _ => {}
        }
    }
    assert!(
        saw_lifecycle_events >= 3,
        "the run must actually exercise drain/fail/scale-up \
         (saw {saw_lifecycle_events} lifecycle events)"
    );
}

#[test]
fn every_in_flight_session_at_failure_time_terminates() {
    let trace = steady_trace(240, 42);
    let plan = FailurePlan::seeded(42, 2, 4, trace.duration());
    let router = Router::new(
        RouterConfig::homogeneous(v100_config(), 4)
            .with_lb(LoadBalancePolicy::LeastKvPressure)
            .with_failures(plan),
    );
    let mut sink = MemorySink::new();
    let report = router.run_traced(&trace, &mut sink);
    // Replay ownership from the event stream: dispatch/recovery moves
    // a request, finished/rejected terminates it.
    let n = trace.len();
    let mut owner: Vec<Option<usize>> = vec![None; n];
    let mut terminated = vec![0usize; n];
    let mut caught: Vec<usize> = Vec::new();
    for e in sink.events() {
        match &e.kind {
            EventKind::Dispatch { target, .. } => {
                owner[e.request.expect("dispatch names its request")] = Some(*target);
            }
            EventKind::SessionRecovered { to, .. } => {
                owner[e.request.expect("recovery names its request")] = Some(*to);
            }
            EventKind::Finished { .. } | EventKind::Rejected { .. } => {
                terminated[e.request.expect("terminal events name their request")] += 1;
            }
            EventKind::ReplicaFailed { in_flight, .. } => {
                let r = e.replica.expect("replica-failed is replica-local");
                let live: Vec<usize> = (0..n)
                    .filter(|&id| owner[id] == Some(r) && terminated[id] == 0)
                    .collect();
                assert_eq!(
                    live.len(),
                    *in_flight,
                    "replica {r}'s advertised in-flight count disagrees with \
                     the replayed ownership at t={}",
                    e.t
                );
                caught.extend(live);
            }
            _ => {}
        }
    }
    assert!(
        !caught.is_empty(),
        "seeded kills must catch at least one in-flight session"
    );
    for id in caught {
        assert_eq!(
            terminated[id], 1,
            "request {id} was in flight on a killed replica and must terminate \
             exactly once (finished on a survivor or rejected with a reason)"
        );
    }
    // And the report agrees: nothing leaks at the fleet level either.
    assert_eq!(report.fleet.admitted + report.fleet.rejected, n);
    assert_eq!(report.fleet.completed, report.fleet.admitted);
}
