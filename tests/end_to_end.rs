//! Cross-crate integration tests: the full pipeline from corpus to
//! generation to simulation, exercised through the public `alisa` API.

use alisa::{AblationLevel, Alisa};
use alisa_attention::policy::PolicyKind;
use alisa_memsim::HardwareSpec;
use alisa_model::engine::{generate, score_sequence, GenerationConfig};
use alisa_model::ModelConfig;
use alisa_sched::{FlexGenScheduler, InferenceSystem, Workload};
use alisa_workloads::Dataset;

#[test]
fn functional_generation_under_every_policy() {
    let alisa = Alisa::builder().kv_sparsity(0.6).build();
    let model = alisa.functional_model(&ModelConfig::opt_6_7b());
    let spec = model.init_spec();
    let corpus = Dataset::WikiText2.spec(
        model.config().vocab_size,
        spec.anchor_count(model.config().vocab_size),
    );
    let prompt = corpus.sequence(0, 32);
    for kind in PolicyKind::ALL {
        let cfg = GenerationConfig {
            max_new_tokens: 12,
            ..GenerationConfig::default().with_policy(kind, 0.6)
        };
        let out = generate(&model, &prompt, &cfg);
        assert_eq!(out.tokens.len(), 12, "{kind} must emit all tokens");
        assert!(
            out.tokens.iter().all(|&t| t < model.config().vocab_size),
            "{kind} emitted out-of-vocab tokens"
        );
    }
}

#[test]
fn simulation_and_functional_paths_share_configuration() {
    let alisa = Alisa::builder()
        .kv_sparsity(0.8)
        .kv_compression(true)
        .build();
    // Performance path.
    let report = alisa.simulate(&ModelConfig::opt_6_7b(), &Workload::new(8, 64, 32));
    assert!(report.outcome.is_completed());
    // Functional path under the same configuration.
    let model = alisa.functional_model(&ModelConfig::opt_6_7b());
    let cfg = alisa.generation_config();
    let tokens: Vec<usize> = (0..48)
        .map(|i| (i * 7) % model.config().vocab_size)
        .collect();
    let score = score_sequence(&model, &tokens, 1, &cfg);
    assert!(score.perplexity().is_finite());
}

#[test]
fn ablation_levels_are_ordered_on_heavy_workloads() {
    // On a memory-pressured workload the full stack must not lose to
    // the ablated variants (Figure 12(c)'s ordering).
    let model = ModelConfig::opt_6_7b();
    let wl = Workload::new(32, 128, 128);
    let hw = HardwareSpec::v100_16gb();
    let mut throughputs = Vec::new();
    for level in AblationLevel::ALL {
        let a = Alisa::builder()
            .kv_sparsity(0.8)
            .hardware(hw.clone())
            .ablation(level)
            .build();
        let r = a.simulate(&model, &wl);
        assert!(
            r.outcome.is_completed(),
            "{}: {}",
            level.label(),
            r.summary()
        );
        throughputs.push(r.throughput());
    }
    assert!(
        throughputs[2] >= throughputs[0],
        "full ALISA ({:.0}) must beat SWA-only ({:.0})",
        throughputs[2],
        throughputs[0]
    );
}

#[test]
fn alisa_beats_flexgen_under_memory_pressure() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_16gb();
    let wl = Workload::new(32, 128, 256);
    let alisa = Alisa::builder()
        .kv_sparsity(0.8)
        .kv_compression(true)
        .hardware(hw.clone())
        .build();
    let a = alisa.simulate(&model, &wl);
    let fg = FlexGenScheduler::new().run(&model, &hw, &wl);
    assert!(a.outcome.is_completed() && fg.outcome.is_completed());
    assert!(
        a.throughput() > fg.throughput(),
        "ALISA {:.0} tok/s must beat FlexGen {:.0} tok/s here",
        a.throughput(),
        fg.throughput()
    );
}

#[test]
fn quantized_run_reduces_cpu_footprint() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_16gb();
    let wl = Workload::new(32, 128, 256);
    let plain = Alisa::builder()
        .kv_sparsity(0.8)
        .kv_compression(false)
        .hardware(hw.clone())
        .build()
        .simulate(&model, &wl);
    let compressed = Alisa::builder()
        .kv_sparsity(0.8)
        .kv_compression(true)
        .hardware(hw)
        .build()
        .simulate(&model, &wl);
    assert!(
        compressed.timeline.peak_cpu_mem() < plain.timeline.peak_cpu_mem(),
        "INT8 must halve CPU-resident KV bytes"
    );
}

#[test]
fn determinism_across_runs() {
    let alisa = Alisa::builder().kv_sparsity(0.8).build();
    let wl = Workload::new(8, 64, 64);
    let a = alisa.simulate(&ModelConfig::llama_7b(), &wl);
    let b = alisa.simulate(&ModelConfig::llama_7b(), &wl);
    assert_eq!(a.timeline, b.timeline, "simulation must be deterministic");

    let m = alisa.functional_model(&ModelConfig::llama_7b());
    let cfg = GenerationConfig {
        max_new_tokens: 8,
        ..alisa.generation_config()
    };
    let g1 = generate(&m, &[1, 2, 3, 4], &cfg);
    let g2 = generate(&m, &[1, 2, 3, 4], &cfg);
    assert_eq!(g1.tokens, g2.tokens, "generation must be deterministic");
}
