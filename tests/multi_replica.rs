//! Integration tests of the multi-replica router: byte-level
//! determinism per load-balancing policy, request conservation across
//! the fleet, single-replica equivalence with the plain engine, and the
//! scaling/disaggregation behaviour `fig14_multi_replica` gates on.

use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, LoadBalancePolicy, Router, RouterConfig, ServeConfig,
    ServeEngine, Trace,
};
use alisa_workloads::LengthModel;

fn replica_cfg(policy: AdmissionPolicy) -> ServeConfig {
    ServeConfig::new(ModelConfig::opt_6_7b(), HardwareSpec::v100_16gb(), policy)
}

fn alpaca_trace(rate: f64, n: usize, seed: u64) -> Trace {
    Trace::generate(
        &ArrivalProcess::Poisson { rate },
        &LengthModel::alpaca().with_max_output(96),
        n,
        seed,
    )
}

const ALL_LBS: [LoadBalancePolicy; 4] = [
    LoadBalancePolicy::RoundRobin,
    LoadBalancePolicy::LeastOutstanding,
    LoadBalancePolicy::LeastKvPressure,
    LoadBalancePolicy::Sticky { sessions: 8 },
];

/// Byte-identical `RouterReport`s (hence `ServeReport`s, fleet and
/// per-replica) across runs at a fixed seed, for every load-balancing
/// policy — with and without requeue and disaggregation.
#[test]
fn router_reports_are_byte_identical_per_seed() {
    for lb in ALL_LBS {
        for (requeue, disagg) in [(false, false), (true, false), (false, true)] {
            let run = || {
                let trace = alpaca_trace(5.0, 60, 0x5EED);
                let mut cfg =
                    RouterConfig::homogeneous(replica_cfg(AdmissionPolicy::alisa()), 3).with_lb(lb);
                if requeue {
                    cfg = cfg.with_requeue();
                }
                if disagg {
                    cfg = cfg.with_disagg(1);
                }
                Router::new(cfg).run(&trace)
            };
            let (a, b) = (run(), run());
            assert_eq!(
                a,
                b,
                "{} requeue={requeue} disagg={disagg}: reports must be equal",
                lb.name()
            );
            assert_eq!(
                a.canonical_text().into_bytes(),
                b.canonical_text().into_bytes(),
                "{} requeue={requeue} disagg={disagg}: canonical text must be byte-identical",
                lb.name()
            );
        }
        // A different seed must actually change the outcome.
        let r1 = Router::new(
            RouterConfig::homogeneous(replica_cfg(AdmissionPolicy::alisa()), 3).with_lb(lb),
        )
        .run(&alpaca_trace(5.0, 60, 1));
        let r2 = Router::new(
            RouterConfig::homogeneous(replica_cfg(AdmissionPolicy::alisa()), 3).with_lb(lb),
        )
        .run(&alpaca_trace(5.0, 60, 2));
        assert_ne!(r1.canonical_text(), r2.canonical_text(), "{}", lb.name());
    }
}

/// Invariant: total admitted + rejected across replicas equals the
/// offered load, for every policy, under light load and overload, with
/// and without requeue/disaggregation.
#[test]
fn fleet_admission_accounting_conserves_offered_load() {
    for lb in ALL_LBS {
        for (rate, timeout) in [(2.0, f64::INFINITY), (50.0, 1.0)] {
            for (requeue, disagg) in [(false, false), (true, false), (true, true)] {
                let trace = alpaca_trace(rate, 70, 7);
                let base = replica_cfg(AdmissionPolicy::vllm()).with_queue_timeout(timeout);
                let mut cfg = RouterConfig::homogeneous(base, 3).with_lb(lb);
                if requeue {
                    cfg = cfg.with_requeue();
                }
                if disagg {
                    cfg = cfg.with_disagg(1);
                }
                let r = Router::new(cfg).run(&trace);
                let ctx = format!(
                    "{} rate={rate} requeue={requeue} disagg={disagg}",
                    lb.name()
                );
                assert_eq!(r.fleet.arrived, 70, "{ctx}");
                assert_eq!(
                    r.fleet.admitted + r.fleet.rejected,
                    r.fleet.arrived,
                    "{ctx}: admitted {} + rejected {} != offered {}",
                    r.fleet.admitted,
                    r.fleet.rejected,
                    r.fleet.arrived
                );
                assert_eq!(
                    r.fleet.completed, r.fleet.admitted,
                    "{ctx}: every admitted request must finish"
                );
                // Per-replica accounting also conserves: each replica's
                // own report balances, and their populations sum to at
                // most the fleet's (router-level rejects have no home).
                let mut total = 0;
                for (i, rep) in r.replicas.iter().enumerate() {
                    assert_eq!(
                        rep.admitted + rep.rejected,
                        rep.arrived,
                        "{ctx}: replica {i} accounting"
                    );
                    total += rep.arrived;
                }
                assert!(total <= r.fleet.arrived, "{ctx}");
            }
        }
    }
}

/// A 1-replica fleet is the single engine: same trace, byte-identical
/// replica report — the router adds routing, not new step semantics.
#[test]
fn single_replica_router_matches_plain_engine() {
    for policy in [
        AdmissionPolicy::alisa(),
        AdmissionPolicy::vllm(),
        AdmissionPolicy::flexgen(),
    ] {
        let trace = alpaca_trace(4.0, 50, 99);
        let engine_report = ServeEngine::new(replica_cfg(policy)).run(&trace);
        let router_report =
            Router::new(RouterConfig::homogeneous(replica_cfg(policy), 1)).run(&trace);
        assert_eq!(
            engine_report.canonical_text().into_bytes(),
            router_report.replicas[0].canonical_text().into_bytes(),
            "{}: 1-replica fleet must reproduce the engine byte-for-byte",
            policy.name()
        );
    }
}

/// Goodput never degrades as replicas are added at a fixed offered
/// rate, and ALISA keeps its per-replica advantage over vLLM at fleet
/// scale — the two properties `fig14_multi_replica` gates on.
#[test]
fn scaling_up_helps_and_alisa_keeps_winning() {
    let trace = alpaca_trace(8.0, 70, 42);
    for policy in [AdmissionPolicy::alisa(), AdmissionPolicy::vllm()] {
        let mut last = 0.0;
        for n in [1usize, 2, 4] {
            let r = Router::new(RouterConfig::homogeneous(replica_cfg(policy), n)).run(&trace);
            assert!(
                r.fleet.goodput_rps + 1e-12 >= last,
                "{} at {n} replicas: goodput {} dropped below {last}",
                policy.name(),
                r.fleet.goodput_rps
            );
            last = r.fleet.goodput_rps;
        }
    }
    for n in [1usize, 2, 4] {
        let alisa = Router::new(RouterConfig::homogeneous(
            replica_cfg(AdmissionPolicy::alisa()),
            n,
        ))
        .run(&trace);
        let vllm = Router::new(RouterConfig::homogeneous(
            replica_cfg(AdmissionPolicy::vllm()),
            n,
        ))
        .run(&trace);
        assert!(
            alisa.fleet.goodput_rps >= vllm.fleet.goodput_rps,
            "{n} replicas: ALISA {} < vLLM {}",
            alisa.fleet.goodput_rps,
            vllm.fleet.goodput_rps
        );
    }
}

/// The replica-stepping worker-thread count is a pure wall-clock knob:
/// a same-seed fleet produces byte-identical `RouterReport`s at 1, 2,
/// 3, and 8 step threads, for every load-balancing policy, with the
/// paths that publish events from inside replica steps — timeout
/// bounces onto the re-queue heap and prefill→decode handoffs — and
/// the preemption machinery all exercised.
#[test]
fn step_threads_never_change_a_byte() {
    let run = |threads: usize,
               lb: LoadBalancePolicy,
               requeue: bool,
               disagg: bool,
               timeout: f64|
     -> String {
        let trace = alpaca_trace(9.0, 60, 0xF1EE7);
        let base = replica_cfg(AdmissionPolicy::alisa()).with_queue_timeout(timeout);
        let mut cfg = RouterConfig::homogeneous(base, 4)
            .with_lb(lb)
            .with_step_threads(threads);
        if requeue {
            cfg = cfg.with_requeue();
        }
        if disagg {
            cfg = cfg.with_disagg(2);
        }
        Router::new(cfg).run(&trace).canonical_text()
    };
    for lb in ALL_LBS {
        for (requeue, disagg, timeout) in [
            (false, false, f64::INFINITY),
            (true, false, 1.5),
            (true, true, f64::INFINITY),
        ] {
            let serial = run(1, lb, requeue, disagg, timeout);
            for threads in [2usize, 3, 8] {
                assert_eq!(
                    serial.as_bytes(),
                    run(threads, lb, requeue, disagg, timeout).as_bytes(),
                    "{} requeue={requeue} disagg={disagg} threads={threads}",
                    lb.name()
                );
            }
        }
    }
}

/// Same knob, hardest step paths: an overloaded fleet running
/// preemptive-SJF with session-KV retention, where every step preempts,
/// re-queues, and retains — still byte-identical at any thread count.
#[test]
fn step_threads_are_inert_under_preemption_and_retention() {
    use alisa_serve::{QueueDiscipline, RetentionCfg};
    let run = |threads: usize| -> String {
        let trace = Trace::generate(
            &ArrivalProcess::Poisson { rate: 20.0 },
            &LengthModel::heavy_tailed(),
            80,
            42,
        );
        let base = replica_cfg(AdmissionPolicy::alisa())
            .with_discipline(
                QueueDiscipline::preemptive_sjf()
                    .with_aging(5.0)
                    .with_patience(0.1),
            )
            .with_queue_timeout(2.0)
            .with_session_reuse(RetentionCfg::half());
        let cfg = RouterConfig::homogeneous(base, 3)
            .with_lb(LoadBalancePolicy::LeastOutstanding)
            .with_requeue()
            .with_step_threads(threads);
        Router::new(cfg).run(&trace).canonical_text()
    };
    let serial = run(1);
    for threads in [2usize, 4] {
        assert_eq!(
            serial.as_bytes(),
            run(threads).as_bytes(),
            "{threads} threads"
        );
    }
}

/// Fleet-scale smoke: a 512-replica fleet dispatches through the
/// incremental `DispatchIndex` and still matches the linear-scan
/// reference byte-for-byte, for the two indexed policies plus
/// round-robin, under both unified and disaggregated tiers. This is the
/// scale point the `router` criterion bench gates (≥10× over the
/// reference scan) — here we only pin correctness.
#[test]
fn indexed_dispatch_matches_reference_at_512_replicas() {
    let trace = alpaca_trace(40.0, 300, 0xA11A);
    for lb in [
        LoadBalancePolicy::RoundRobin,
        LoadBalancePolicy::LeastOutstanding,
        LoadBalancePolicy::LeastKvPressure,
    ] {
        for disagg in [false, true] {
            let mut cfg =
                RouterConfig::homogeneous(replica_cfg(AdmissionPolicy::alisa()), 512).with_lb(lb);
            if disagg {
                cfg = cfg.with_disagg(128);
            }
            let indexed = Router::new(cfg.clone()).run(&trace);
            let reference = Router::new(cfg).with_reference_paths(true).run(&trace);
            assert_eq!(
                indexed.canonical_text().into_bytes(),
                reference.canonical_text().into_bytes(),
                "{} disagg={disagg}: 512-replica indexed dispatch must \
                 reproduce the reference scan byte-for-byte",
                lb.name()
            );
        }
    }
}

/// Disaggregated fleets hand every multi-token prompt off exactly once,
/// and the handoff count shows up in the report.
#[test]
fn disaggregation_accounting() {
    let trace = alpaca_trace(3.0, 40, 5);
    let r = Router::new(
        RouterConfig::homogeneous(replica_cfg(AdmissionPolicy::alisa()), 3)
            .with_disagg(1)
            .with_lb(LoadBalancePolicy::LeastKvPressure),
    )
    .run(&trace);
    assert_eq!(r.prefill_replicas, 1);
    assert_eq!(
        r.handoffs, r.fleet.admitted,
        "every admitted multi-token request is handed off exactly once"
    );
    assert_eq!(r.fleet.completed, r.fleet.admitted);
    assert_eq!(r.replicas[0].completed, 0, "prefill tier never finishes");
}
