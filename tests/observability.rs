//! Integration tests of the observability layer (`alisa-obs` threaded
//! through `alisa-serve`): decision-trace event streams must *reconcile
//! exactly* with the `ServeReport` the same run produces, tracing must
//! be invisible when disabled, and the canonical report text must
//! round-trip through its parser byte-for-byte. The invariants pinned
//! here:
//!
//! * `run()` and `run_traced(.., &mut NullSink)` are the same run —
//!   tracing off leaves the report byte-identical and adds no metrics
//!   section;
//! * same seed ⇒ byte-identical JSONL event stream, and every line of
//!   it re-parses through `Event::from_json` (the schema check CI runs
//!   via `trace_check`);
//! * arrival/admission/rejection/preemption/finish counters derived
//!   from the event stream equal the report's own totals — including
//!   the re-admission accounting for preempted requests — and the
//!   report's embedded metrics section IS the registry dump of the
//!   stream;
//! * timeout rejections carry the discipline scan and queue wait in
//!   both the terminal `RejectReason` and the decision-trace event;
//! * `ServeReport::from_canonical_text` round-trips reports with and
//!   without the optional reuse / discipline / metrics sections.

use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, Event, EventKind, MemorySink, MetricsRegistry,
    QueueDiscipline, RejectReason, RetentionCfg, Router, RouterConfig, ServeConfig, ServeEngine,
    ServeReport, Trace,
};
use alisa_workloads::LengthModel;

fn v100_config(policy: AdmissionPolicy) -> ServeConfig {
    ServeConfig::new(
        alisa_model::ModelConfig::opt_6_7b(),
        alisa_memsim::HardwareSpec::v100_16gb(),
        policy,
    )
}

fn heavy_trace(rate: f64, n: usize, seed: u64) -> Trace {
    Trace::generate(
        &ArrivalProcess::Poisson { rate },
        &LengthModel::heavy_tailed(),
        n,
        seed,
    )
}

/// The preemption-heavy operating point `tests/discipline.rs` pins:
/// overload plus an impatient preemptive-SJF scan, with a finite
/// timeout so the stream also contains queue-timeout rejections.
fn preemptive_overload() -> (ServeConfig, Trace) {
    let cfg = v100_config(AdmissionPolicy::alisa())
        .with_discipline(
            QueueDiscipline::preemptive_sjf()
                .with_aging(5.0)
                .with_patience(0.1),
        )
        .with_queue_timeout(2.0);
    (cfg, heavy_trace(20.0, 80, 42))
}

/// Tracing off is free: `run()` equals `run_traced` into a sink, minus
/// the opt-in metrics section — and the untraced canonical text never
/// mentions metrics, so every pre-obs golden fixture is untouched.
#[test]
fn tracing_off_leaves_the_report_byte_identical() {
    let (cfg, trace) = preemptive_overload();
    let engine = ServeEngine::new(cfg);
    let untraced = engine.run(&trace);
    let mut sink = MemorySink::new();
    let mut traced = engine.run_traced(&trace, &mut sink);

    assert!(!sink.events().is_empty(), "the traced run must emit");
    assert!(
        !untraced.canonical_text().contains("\nmetrics "),
        "untraced reports must not grow a metrics section"
    );
    assert!(untraced.metrics.is_none());
    assert!(traced.metrics.is_some());
    // Identical in every field except the opt-in metrics section.
    traced.metrics = None;
    assert_eq!(untraced, traced, "tracing must not perturb the simulation");
    assert_eq!(
        untraced.canonical_text().into_bytes(),
        traced.canonical_text().into_bytes()
    );
}

/// Same seed ⇒ byte-identical JSONL, and every line re-parses (the
/// schema contract `trace_check` enforces in CI).
#[test]
fn same_seed_event_streams_are_byte_identical_and_parse() {
    let (cfg, trace) = preemptive_overload();
    let engine = ServeEngine::new(cfg);
    let run = || {
        let mut sink = MemorySink::new();
        engine.run_traced(&trace, &mut sink);
        sink.to_jsonl()
    };
    let a = run();
    let b = run();
    assert_eq!(a.as_bytes(), b.as_bytes(), "same seed must replay exactly");
    let mut n = 0;
    for line in a.lines() {
        let ev = Event::from_json(line).unwrap_or_else(|e| panic!("invalid event {line:?}: {e}"));
        assert_eq!(ev.to_json(), line, "JSON form must round-trip");
        n += 1;
    }
    assert!(
        n > 100,
        "an overloaded 80-request run traces richly, got {n}"
    );
}

/// The acceptance reconciliation: counters derived from the event
/// stream equal the report's totals. Admissions count re-admissions
/// after preemption, so `admitted events == report.admitted +
/// preemptions`; rejection and preemption totals match exactly; and
/// the report's embedded metrics section is byte-for-byte the registry
/// dump of the stream.
#[test]
fn decision_events_reconcile_with_the_report() {
    let (cfg, trace) = preemptive_overload();
    let mut sink = MemorySink::new();
    let report = ServeEngine::new(cfg).run_traced(&trace, &mut sink);
    let stats = report.discipline.as_ref().expect("non-FCFS run reports");
    assert!(stats.preemptions > 0, "this operating point must preempt");
    let preemptions = stats.preemptions as usize;
    assert!(report.rejected > 0, "and must reject");

    let reg = MetricsRegistry::from_events(sink.events());
    assert_eq!(reg.counter("arrived") as usize, report.arrived);
    assert_eq!(reg.counter("rejected") as usize, report.rejected);
    assert_eq!(
        reg.counter("admitted") as usize,
        report.admitted + preemptions,
        "each preemption causes exactly one re-admission"
    );
    assert_eq!(reg.counter("preemptions") as usize, preemptions);
    assert_eq!(reg.counter("finished") as usize, report.completed);
    assert_eq!(
        reg.counter("admitted") as usize - reg.counter("preemptions") as usize
            + reg.counter("rejected") as usize,
        report.arrived,
        "admitted + rejected == offered, once re-admissions are netted out"
    );
    assert_eq!(
        report.metrics.as_deref(),
        Some(reg.canonical_text().as_str()),
        "the report's metrics section is the registry dump of the stream"
    );

    // Every terminal rejection/preemption names its losing comparison.
    for ev in sink.events() {
        match &ev.kind {
            EventKind::Rejected { decision_trace, .. }
            | EventKind::Preempted { decision_trace, .. } => {
                assert!(
                    !decision_trace.is_empty(),
                    "decision events must carry a trace: {}",
                    ev.to_json()
                );
                assert!(ev.request.is_some(), "decisions are per-request");
            }
            _ => {}
        }
    }
}

/// Timeout rejections carry *which* discipline scan fired and the
/// queue wait at rejection, in both the terminal `RejectReason` and
/// the decision-trace event (satellite: reject_reason detail).
#[test]
fn timeout_rejections_name_the_scan_and_the_wait() {
    let (cfg, trace) = preemptive_overload();
    let timeout = cfg.queue_timeout_s;
    let mut sink = MemorySink::new();
    ServeEngine::new(cfg).run_traced(&trace, &mut sink);

    let mut timeouts = 0;
    for ev in sink.events() {
        if let EventKind::Rejected {
            reason,
            queue_wait_s,
            decision_trace,
        } = &ev.kind
        {
            if reason == "queue-timeout" {
                timeouts += 1;
                assert!(
                    *queue_wait_s >= timeout,
                    "a timeout rejection fired before the timeout: {queue_wait_s} < {timeout}"
                );
                assert!(
                    decision_trace.contains("preemptive-sjf scan"),
                    "the trace must name the discipline scan: {decision_trace:?}"
                );
                assert!(
                    decision_trace.contains(&format!("waited {queue_wait_s:.3}s")),
                    "the trace must quote the wait the reason records: {decision_trace:?}"
                );
            }
        }
    }
    assert!(timeouts > 0, "overload past the timeout must time out");

    // The structured reason agrees with what the event stream says.
    let reason = RejectReason::QueueTimeout {
        waited_s: 1.5,
        discipline: "sjf",
    };
    assert_eq!(reason.label(), "queue-timeout");
    assert!(reason.is_timeout());
    assert_eq!(reason.detail(), "waited 1.500s; rejected by sjf scan");
}

/// The canonical report text parses back to an equal report — with and
/// without each optional section (reuse, discipline, metrics) — and
/// re-canonicalizes to the same bytes.
#[test]
fn report_canonical_text_round_trips() {
    let plain =
        ServeEngine::new(v100_config(AdmissionPolicy::alisa())).run(&heavy_trace(4.0, 40, 7));
    assert!(plain.reuse.is_none() && plain.discipline.is_none() && plain.metrics.is_none());

    let (cfg, trace) = preemptive_overload();
    let mut sink = MemorySink::new();
    let traced = ServeEngine::new(cfg).run_traced(&trace, &mut sink);
    assert!(traced.discipline.is_some() && traced.metrics.is_some());

    let session_cfg =
        v100_config(AdmissionPolicy::alisa()).with_session_reuse(RetentionCfg::half());
    let sessions = ServeEngine::new(session_cfg).run(&Trace::generate_sessions(
        &ArrivalProcess::Poisson { rate: 2.0 },
        &alisa_workloads::SessionModel::chat().with_max_turns(4),
        12,
        13,
    ));
    assert!(sessions.reuse.is_some(), "session runs report reuse stats");

    for (tag, report) in [("plain", plain), ("traced", traced), ("sessions", sessions)] {
        let text = report.canonical_text();
        let parsed = ServeReport::from_canonical_text(&text)
            .unwrap_or_else(|e| panic!("{tag}: canonical text must parse: {e}"));
        assert_eq!(parsed, report, "{tag}: parse must invert canonicalize");
        assert_eq!(
            parsed.canonical_text().into_bytes(),
            text.into_bytes(),
            "{tag}: re-canonicalized bytes must match"
        );
    }
}

/// The fleet traces too: a disaggregated router run emits dispatch and
/// handoff events whose counts reconcile with the router report, and
/// the fleet report carries the merged metrics section.
#[test]
fn fleet_events_reconcile_with_the_router_report() {
    let cfg = v100_config(AdmissionPolicy::alisa());
    let router = Router::new(RouterConfig::homogeneous(cfg, 3).with_disagg(1));
    let trace = heavy_trace(6.0, 40, 5);
    let mut sink = MemorySink::new();
    let r = router.run_traced(&trace, &mut sink);

    let reg = MetricsRegistry::from_events(sink.events());
    assert_eq!(reg.counter("arrived") as usize, r.fleet.arrived);
    assert_eq!(reg.counter("rejected") as usize, r.fleet.rejected);
    assert_eq!(reg.counter("finished") as usize, r.fleet.completed);
    assert_eq!(reg.counter("handoffs") as usize, r.handoffs);
    assert!(reg.counter("dispatches") > 0, "arrivals must be dispatched");
    assert_eq!(
        r.fleet.metrics.as_deref(),
        Some(reg.canonical_text().as_str()),
        "the fleet metrics section is the merged registry dump"
    );

    // Handoff events name distinct replicas and carry the transfer cost.
    let mut handoffs = 0;
    for ev in sink.events() {
        if let EventKind::Handoff {
            from,
            to,
            bytes,
            transfer_s,
        } = &ev.kind
        {
            handoffs += 1;
            assert_ne!(from, to, "a handoff crosses replicas");
            assert!(*bytes > 0 && *transfer_s > 0.0);
        }
    }
    assert_eq!(handoffs, r.handoffs, "one event per handoff");

    // The untraced fleet run is unchanged by tracing.
    let router2 = Router::new(
        RouterConfig::homogeneous(v100_config(AdmissionPolicy::alisa()), 3).with_disagg(1),
    );
    let untraced = router2.run(&trace);
    assert!(untraced.fleet.metrics.is_none());
    assert_eq!(untraced.fleet.arrived, r.fleet.arrived);
    assert_eq!(untraced.fleet.completed, r.fleet.completed);
    assert_eq!(untraced.handoffs, r.handoffs);
}

/// Parallel replica stepping never touches the observable record: a
/// traced fleet run at `step_threads > 1` (traced runs step serially
/// by design, so per-replica emissions interleave deterministically)
/// produces the byte-identical JSONL event stream AND router report of
/// the 1-thread run — and the untraced N-thread report matches both.
#[test]
fn step_threads_leave_the_event_stream_byte_identical() {
    let trace = heavy_trace(12.0, 50, 7);
    let run_traced = |threads: usize| {
        let base = v100_config(AdmissionPolicy::alisa()).with_queue_timeout(2.0);
        let router = Router::new(
            RouterConfig::homogeneous(base, 3)
                .with_requeue()
                .with_step_threads(threads),
        );
        let mut sink = MemorySink::new();
        let report = router.run_traced(&trace, &mut sink);
        (report, sink.to_jsonl())
    };
    let (mut report_1, events_1) = run_traced(1);
    let (report_4, events_4) = run_traced(4);
    assert_eq!(
        events_1.as_bytes(),
        events_4.as_bytes(),
        "traced event streams must not depend on step_threads"
    );
    assert_eq!(
        report_1.canonical_text().into_bytes(),
        report_4.canonical_text().into_bytes()
    );

    // And the untraced parallel run agrees with the traced ones,
    // minus the opt-in metrics section tracing appends.
    let base = v100_config(AdmissionPolicy::alisa()).with_queue_timeout(2.0);
    let untraced = Router::new(
        RouterConfig::homogeneous(base, 3)
            .with_requeue()
            .with_step_threads(4),
    )
    .run(&trace);
    assert!(untraced.fleet.metrics.is_none());
    report_1.fleet.metrics = None;
    assert_eq!(
        untraced, report_1,
        "tracing must not perturb the parallel-stepped simulation"
    );
}

/// A filtered per-request view reads as a coherent lifecycle: the
/// request's events are time-ordered and start with its arrival.
#[test]
fn per_request_timelines_are_ordered_lifecycles() {
    let (cfg, trace) = preemptive_overload();
    let mut sink = MemorySink::new();
    let report = ServeEngine::new(cfg).run_traced(&trace, &mut sink);

    let mut checked = 0;
    for id in 0..report.arrived {
        let evs = sink.for_request(id);
        if evs.is_empty() {
            continue;
        }
        checked += 1;
        assert_eq!(
            evs[0].kind.name(),
            "arrival",
            "request {id}'s first event must be its arrival"
        );
        for w in evs.windows(2) {
            assert!(
                w[0].t <= w[1].t + 1e-12,
                "request {id}: events out of order at t={} then t={}",
                w[0].t,
                w[1].t
            );
        }
        let terminal = evs
            .iter()
            .filter(|e| matches!(e.kind.name(), "finished" | "rejected"))
            .count();
        assert!(
            terminal >= 1,
            "request {id} must reach a terminal event in a drained run"
        );
    }
    assert_eq!(checked, report.arrived, "every request leaves a trace");
}
