//! Integration tests of the online serving subsystem: determinism down
//! to the byte, the headline ALISA-vs-vLLM goodput claim on the paper's
//! V100-16GB testbed, and request-conservation accounting.

use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_serve::{AdmissionPolicy, ArrivalProcess, ServeConfig, ServeEngine, Trace};
use alisa_workloads::LengthModel;

fn v100_config(policy: AdmissionPolicy) -> ServeConfig {
    ServeConfig::new(ModelConfig::opt_6_7b(), HardwareSpec::v100_16gb(), policy)
}

fn alpaca_trace(rate: f64, n: usize, seed: u64) -> Trace {
    Trace::generate(
        &ArrivalProcess::Poisson { rate },
        &LengthModel::alpaca().with_max_output(96),
        n,
        seed,
    )
}

/// (a) Same seed ⇒ byte-identical `ServeReport`, across fresh engines
/// and regenerated traces.
#[test]
fn same_seed_produces_byte_identical_reports() {
    for policy in [
        AdmissionPolicy::alisa(),
        AdmissionPolicy::vllm(),
        AdmissionPolicy::flexgen(),
    ] {
        let run = || {
            let trace = alpaca_trace(3.0, 60, 0xA11A5);
            ServeEngine::new(v100_config(policy)).run(&trace)
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "{}: reports must be equal", policy.name());
        assert_eq!(
            a.canonical_text().into_bytes(),
            b.canonical_text().into_bytes(),
            "{}: canonical reports must be byte-identical",
            policy.name()
        );
    }
    // And a different seed must actually change the report.
    let t1 = ServeEngine::new(v100_config(AdmissionPolicy::alisa())).run(&alpaca_trace(3.0, 60, 1));
    let t2 = ServeEngine::new(v100_config(AdmissionPolicy::alisa())).run(&alpaca_trace(3.0, 60, 2));
    assert_ne!(t1.canonical_text(), t2.canonical_text());
}

/// (b) ALISA admission achieves >= vLLM goodput at equal arrival rate
/// on the V100-16GB testbed — from unloaded through saturated.
#[test]
fn alisa_goodput_at_least_vllm_on_v100() {
    for seed in [11u64, 42] {
        for rate in [0.5, 2.0, 6.0, 12.0] {
            let trace = alpaca_trace(rate, 80, seed);
            let timeout = 5.0 * v100_config(AdmissionPolicy::alisa()).slo.ttft_s;
            let alisa =
                ServeEngine::new(v100_config(AdmissionPolicy::alisa()).with_queue_timeout(timeout))
                    .run(&trace);
            let vllm =
                ServeEngine::new(v100_config(AdmissionPolicy::vllm()).with_queue_timeout(timeout))
                    .run(&trace);
            assert!(
                alisa.goodput_rps >= vllm.goodput_rps,
                "seed {seed} rate {rate}: ALISA goodput {:.3} < vLLM {:.3}",
                alisa.goodput_rps,
                vllm.goodput_rps
            );
        }
    }
}

/// At saturation the win must be strict, driven by the larger
/// sparsity-budgeted batch.
#[test]
fn alisa_wins_strictly_at_saturation() {
    // Full Alpaca output lengths (n up to 512): dense vLLM reservations
    // fit only ~11 concurrent requests on a V100-16GB, so 6 req/s is
    // deep saturation for vLLM while ALISA's sparse reservations keep up.
    let trace = Trace::generate(
        &ArrivalProcess::Poisson { rate: 6.0 },
        &LengthModel::alpaca(),
        60,
        42,
    );
    let timeout = 5.0 * v100_config(AdmissionPolicy::alisa()).slo.ttft_s;
    let alisa = ServeEngine::new(v100_config(AdmissionPolicy::alisa()).with_queue_timeout(timeout))
        .run(&trace);
    let vllm = ServeEngine::new(v100_config(AdmissionPolicy::vllm()).with_queue_timeout(timeout))
        .run(&trace);
    assert!(
        alisa.goodput_rps > 1.2 * vllm.goodput_rps,
        "at 6 req/s ALISA ({:.3} req/s) must clearly beat vLLM ({:.3} req/s)",
        alisa.goodput_rps,
        vllm.goodput_rps
    );
    assert!(
        alisa.mean_batch > vllm.mean_batch,
        "the win must come from the bigger admitted batch ({:.1} vs {:.1})",
        alisa.mean_batch,
        vllm.mean_batch
    );
}

/// (c) Rejected requests are accounted: admitted + rejected = arrived,
/// with and without overload, and nothing is left in flight.
#[test]
fn request_accounting_conserves() {
    for (rate, timeout) in [(2.0, f64::INFINITY), (40.0, 1.0), (100.0, 0.25)] {
        for policy in [
            AdmissionPolicy::alisa(),
            AdmissionPolicy::vllm(),
            AdmissionPolicy::flexgen(),
        ] {
            let trace = alpaca_trace(rate, 70, 9);
            let r = ServeEngine::new(v100_config(policy).with_queue_timeout(timeout)).run(&trace);
            assert_eq!(r.arrived, 70, "{}", policy.name());
            assert_eq!(
                r.admitted + r.rejected,
                r.arrived,
                "{} at {rate} req/s: admitted {} + rejected {} != arrived {}",
                policy.name(),
                r.admitted,
                r.rejected,
                r.arrived
            );
            assert_eq!(
                r.completed,
                r.admitted,
                "{}: every admitted request must run to completion",
                policy.name()
            );
        }
    }
}

/// Saved traces replay to the exact same report as the in-memory ones.
#[test]
fn persisted_trace_replays_identically() {
    let trace = alpaca_trace(4.0, 40, 123);
    let reloaded = Trace::from_text(&trace.to_text()).expect("codec round trip");
    let engine = ServeEngine::new(v100_config(AdmissionPolicy::alisa()));
    assert_eq!(
        engine.run(&trace).canonical_text(),
        engine.run(&reloaded).canonical_text()
    );
}
