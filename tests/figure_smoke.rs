//! Smoke tests: every figure binary must run to completion in `--quick`
//! mode. This keeps the full experiment harness from rotting.

use std::process::Command;
use std::time::{Duration, Instant};

/// Runs `<bin> --quick`, asserting success, and returns the child's
/// wall-clock time (including any incremental `cargo run` rebuild, so
/// callers that budget it must warm the target dir first).
fn run_quick(bin: &str) -> Duration {
    let started = Instant::now();
    let out = Command::new(env!("CARGO"))
        .args([
            "run",
            "--quiet",
            "--release",
            "-p",
            "alisa-bench",
            "--bin",
            bin,
            "--",
            "--quick",
        ])
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("===") || stdout.contains("paper"),
        "{bin} produced no output"
    );
    started.elapsed()
}

// Fast binaries run in one combined test to amortize the cargo lock;
// the heavy sweeps get their own (still quick-mode) tests so a failure
// names the culprit.

#[test]
fn fast_figures_run() {
    for bin in [
        "fig01_motivation",
        "fig02_kv_caching",
        "fig05_weight_maps",
        "fig11_attention_breakdown",
        "table01_comparison",
    ] {
        run_quick(bin);
    }
}

#[test]
fn fig03_sparsity_runs() {
    run_quick("fig03_sparsity");
}

#[test]
fn fig04_attention_patterns_runs() {
    run_quick("fig04_attention_patterns");
}

#[test]
fn fig08_accuracy_runs() {
    run_quick("fig08_accuracy");
}

#[test]
fn fig09_throughput_runs() {
    run_quick("fig09_throughput");
}

#[test]
fn fig10_attainable_sparsity_runs() {
    run_quick("fig10_attainable_sparsity");
}

#[test]
fn fig12_breakdown_runs() {
    run_quick("fig12_inference_breakdown");
}

/// The fig13 quick sweep doubles as the wall-clock tripwire for the
/// serving hot loop: a super-linear regression in the event queue,
/// discipline scan, or top-K selection inflates it far past this
/// (deliberately generous) budget long before any unit bench notices.
/// The first run warms the target dir so `cargo run`'s incremental
/// rebuild never counts against the budget; the second run is timed.
#[test]
fn fig13_online_serving_runs_within_budget() {
    const BUDGET: Duration = Duration::from_secs(240);
    run_quick("fig13_online_serving");
    let elapsed = run_quick("fig13_online_serving");
    assert!(
        elapsed < BUDGET,
        "fig13 --quick took {elapsed:?}, over the {BUDGET:?} smoke budget — \
         a serving hot path has likely gone super-linear"
    );
}

#[test]
fn fig14_multi_replica_runs() {
    run_quick("fig14_multi_replica");
}

/// The sweep harness contract: `--threads 1` is the exact serial
/// reference, and any other thread count must reproduce its stdout
/// byte-for-byte (cells run in parallel, results drain in grid order).
/// fig14 is the richest grid (router fleets + LB + disaggregation
/// sections), so it is the one pinned here and `cmp`-ed in CI.
#[test]
fn fig14_threads_do_not_change_a_byte() {
    let run = |threads: &str| -> Vec<u8> {
        let out = Command::new(env!("CARGO"))
            .args([
                "run",
                "--quiet",
                "--release",
                "-p",
                "alisa-bench",
                "--bin",
                "fig14_multi_replica",
                "--",
                "--quick",
                "--threads",
                threads,
            ])
            .output()
            .expect("fig14 must launch");
        assert!(
            out.status.success(),
            "fig14 --threads {threads} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = run("1");
    for threads in ["2", "4"] {
        assert_eq!(
            serial,
            run(threads),
            "fig14 stdout must be byte-identical at --threads {threads}"
        );
    }
}

#[test]
fn fig15_mixed_precision_runs() {
    run_quick("fig15_mixed_precision");
}

#[test]
fn fig16_multi_turn_runs() {
    run_quick("fig16_multi_turn");
}

#[test]
fn fig17_admission_runs() {
    run_quick("fig17_admission");
}

#[test]
fn fig18_fleet_dynamics_runs() {
    run_quick("fig18_fleet_dynamics");
}
