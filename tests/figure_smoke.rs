//! Smoke tests: every figure binary must run to completion in `--quick`
//! mode. This keeps the full experiment harness from rotting.

use std::process::Command;

fn run_quick(bin: &str) {
    let out = Command::new(env!("CARGO"))
        .args([
            "run",
            "--quiet",
            "--release",
            "-p",
            "alisa-bench",
            "--bin",
            bin,
            "--",
            "--quick",
        ])
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("===") || stdout.contains("paper"),
        "{bin} produced no output"
    );
}

// Fast binaries run in one combined test to amortize the cargo lock;
// the heavy sweeps get their own (still quick-mode) tests so a failure
// names the culprit.

#[test]
fn fast_figures_run() {
    for bin in [
        "fig01_motivation",
        "fig02_kv_caching",
        "fig05_weight_maps",
        "fig11_attention_breakdown",
        "table01_comparison",
    ] {
        run_quick(bin);
    }
}

#[test]
fn fig03_sparsity_runs() {
    run_quick("fig03_sparsity");
}

#[test]
fn fig04_attention_patterns_runs() {
    run_quick("fig04_attention_patterns");
}

#[test]
fn fig08_accuracy_runs() {
    run_quick("fig08_accuracy");
}

#[test]
fn fig09_throughput_runs() {
    run_quick("fig09_throughput");
}

#[test]
fn fig10_attainable_sparsity_runs() {
    run_quick("fig10_attainable_sparsity");
}

#[test]
fn fig12_breakdown_runs() {
    run_quick("fig12_inference_breakdown");
}

#[test]
fn fig13_online_serving_runs() {
    run_quick("fig13_online_serving");
}

#[test]
fn fig14_multi_replica_runs() {
    run_quick("fig14_multi_replica");
}

#[test]
fn fig15_mixed_precision_runs() {
    run_quick("fig15_mixed_precision");
}

#[test]
fn fig16_multi_turn_runs() {
    run_quick("fig16_multi_turn");
}

#[test]
fn fig17_admission_runs() {
    run_quick("fig17_admission");
}
