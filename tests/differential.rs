//! Reference-vs-optimized differential harness.
//!
//! PR 7 flattened the simulator's hot paths — incremental top-K
//! selection, the indexed event queue with maintained discipline order,
//! scratch-buffer reuse — under one contract: **not a single output
//! byte may change**. The naive implementations were kept reachable
//! (`ServeEngine::with_reference_paths(true)` forces the linear event
//! scan and the re-sorting discipline pick; `GlobalSetModel::pick` is
//! the full re-sort the scheduler no longer calls), and this harness
//! property-tests the optimized paths against them over arbitrary
//! traces × queue disciplines × precision policies × retention on/off:
//!
//! * canonical `ServeReport` text byte-identical, traced and untraced;
//! * the decision-trace JSONL event stream byte-identical;
//! * `GlobalSetModel::pick_into` (cached bases + packed-key partial
//!   sort) equal to `pick` (full comparator re-sort) across decode
//!   walks that grow the range, cross drift epochs, and reuse scratch;
//! * `TokenKvStore::partition_needed_into` into a dirty reused buffer
//!   equal to the allocating `partition_needed`.
//!
//! Failures reproduce exactly: the vendored proptest seeds its RNG from
//! the test path, so a red run here is a deterministic counterexample.

use alisa::PrecisionPolicy;
use alisa_kvcache::{Location, NeededPartition, TokenKvStore};
use alisa_sched::{GlobalSetModel, TopKScratch};
use alisa_serve::{
    AdmissionPolicy, AutoscalerCfg, FailurePlan, LoadBalancePolicy, MemorySink, QueueDiscipline,
    RetentionCfg, Router, RouterConfig, ServeConfig, ServeEngine, Trace, TraceEntry,
};
use proptest::prelude::*;

/// Builds a *valid* trace from raw per-entry tuples
/// `(gap_s, new_tokens, output_len, slot)`: arrivals accumulate the
/// gaps (monotone by construction), and a slot below 4 threads the
/// entry into that multi-turn session — its prompt is the session's
/// accumulated context plus `new_tokens`, so the turn/prefix invariants
/// `Trace::new` enforces hold for any input tuple.
fn build_trace(raw: Vec<(f64, usize, usize, usize)>) -> Trace {
    let mut t = 0.0;
    // Per session slot: (next turn index, accumulated context length).
    let mut sessions = [(0usize, 0usize); 4];
    let entries = raw
        .into_iter()
        .map(|(gap, body, out, slot)| {
            t += gap;
            if let Some(s) = sessions.get_mut(slot) {
                let (turn, ctx) = *s;
                let prompt = ctx + body;
                *s = (turn + 1, prompt + out);
                TraceEntry::turn(t, prompt, out, slot, turn)
            } else {
                TraceEntry::single_shot(t, body, out)
            }
        })
        .collect();
    Trace::new(entries).expect("constructed entries satisfy every trace invariant")
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    // Slots 0..4 are sessions, 4..7 single-shot — roughly half of each.
    collection::vec((0.0f64..0.8, 1usize..220, 1usize..64, 0usize..7), 8..48).prop_map(build_trace)
}

fn discipline(i: usize) -> QueueDiscipline {
    match i {
        0 => QueueDiscipline::fcfs(),
        1 => QueueDiscipline::sjf(),
        2 => QueueDiscipline::best_fit(),
        _ => QueueDiscipline::preemptive_sjf()
            .with_aging(5.0)
            .with_patience(0.1),
    }
}

fn policy(i: usize) -> AdmissionPolicy {
    match i {
        0 => AdmissionPolicy::alisa(),
        1 => AdmissionPolicy::alisa_mixed(),
        2 => AdmissionPolicy::alisa_with(PrecisionPolicy::int8()),
        3 => AdmissionPolicy::vllm(),
        _ => AdmissionPolicy::flexgen(),
    }
}

fn config(disc: usize, pol: usize, retention: bool, timeout: bool) -> ServeConfig {
    let mut cfg = ServeConfig::new(
        alisa_model::ModelConfig::opt_6_7b(),
        alisa_memsim::HardwareSpec::v100_16gb(),
        policy(pol),
    )
    .with_discipline(discipline(disc));
    if retention {
        cfg = cfg.with_session_reuse(RetentionCfg::half());
    }
    if timeout {
        cfg = cfg.with_queue_timeout(1.5);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core differential property: for an arbitrary valid trace and
    /// any (discipline × precision policy × retention × timeout)
    /// configuration, the engine with reference paths forced on and the
    /// optimized engine produce byte-identical canonical reports and
    /// byte-identical decision-trace streams — both the untraced
    /// (`run`) and traced (`run_traced`) monomorphizations.
    #[test]
    fn optimized_engine_matches_reference_byte_for_byte(
        trace in trace_strategy(),
        disc in 0usize..4,
        pol in 0usize..5,
        retention in 0usize..2,
        timeout in 0usize..2,
    ) {
        let cfg = config(disc, pol, retention == 1, timeout == 1);
        let optimized = ServeEngine::new(cfg.clone());
        let reference = ServeEngine::new(cfg).with_reference_paths(true);
        let ctx = format!(
            "disc={} policy={} retention={retention} timeout={timeout} n={}",
            discipline(disc).name(),
            policy(pol).name(),
            trace.len(),
        );

        let plain_ref = reference.run(&trace);
        let plain_opt = optimized.run(&trace);
        prop_assert_eq!(
            plain_ref.canonical_text().into_bytes(),
            plain_opt.canonical_text().into_bytes(),
            "untraced canonical report diverged: {}",
            &ctx
        );

        let mut sink_ref = MemorySink::new();
        let mut sink_opt = MemorySink::new();
        let traced_ref = reference.run_traced(&trace, &mut sink_ref);
        let traced_opt = optimized.run_traced(&trace, &mut sink_opt);
        prop_assert_eq!(
            sink_ref.to_jsonl().into_bytes(),
            sink_opt.to_jsonl().into_bytes(),
            "event stream diverged: {}",
            &ctx
        );
        prop_assert_eq!(
            traced_ref.canonical_text().into_bytes(),
            traced_opt.canonical_text().into_bytes(),
            "traced canonical report diverged: {}",
            &ctx
        );
        prop_assert_eq!(traced_ref, traced_opt, "report structs diverged: {}", &ctx);
    }
}

fn lb_policy(i: usize) -> LoadBalancePolicy {
    match i {
        0 => LoadBalancePolicy::RoundRobin,
        1 => LoadBalancePolicy::LeastOutstanding,
        2 => LoadBalancePolicy::LeastKvPressure,
        _ => LoadBalancePolicy::Sticky { sessions: 8 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PR 8's fleet-dispatch analogue of the engine property above: the
    /// router with indexed replica selection (per-tier
    /// `DispatchIndex` orderings, allocation-free dispatch scratch) and
    /// the router with `with_reference_paths(true)` — per-dispatch
    /// linear `min_by`/`min_by_key` scans and freshly allocated
    /// candidate lists — produce byte-identical canonical reports and
    /// byte-identical decision-trace streams, across arbitrary traces ×
    /// all four load-balance policies × unified/disaggregated tiers ×
    /// requeue on/off × step-thread counts.
    #[test]
    fn indexed_router_matches_reference_byte_for_byte(
        trace in trace_strategy(),
        lb in 0usize..4,
        replicas in 2usize..5,
        disagg in 0usize..2,
        requeue in 0usize..2,
        threads in 1usize..4,
    ) {
        let base = config(1, 0, true, true);
        let mut cfg = RouterConfig::homogeneous(base, replicas)
            .with_lb(lb_policy(lb))
            .with_step_threads(threads);
        if requeue == 1 {
            cfg = cfg.with_requeue();
        }
        if disagg == 1 {
            cfg = cfg.with_disagg(1);
        }
        let optimized = Router::new(cfg.clone());
        let reference = Router::new(cfg).with_reference_paths(true);
        let ctx = format!(
            "lb={} replicas={replicas} disagg={disagg} requeue={requeue} threads={threads} n={}",
            lb_policy(lb).name(),
            trace.len(),
        );

        let plain_ref = reference.run(&trace);
        let plain_opt = optimized.run(&trace);
        prop_assert_eq!(
            plain_ref.canonical_text().into_bytes(),
            plain_opt.canonical_text().into_bytes(),
            "untraced canonical report diverged: {}",
            &ctx
        );

        let mut sink_ref = MemorySink::new();
        let mut sink_opt = MemorySink::new();
        let traced_ref = reference.run_traced(&trace, &mut sink_ref);
        let traced_opt = optimized.run_traced(&trace, &mut sink_opt);
        prop_assert_eq!(
            sink_ref.to_jsonl().into_bytes(),
            sink_opt.to_jsonl().into_bytes(),
            "event stream diverged: {}",
            &ctx
        );
        prop_assert_eq!(
            traced_ref.canonical_text().into_bytes(),
            traced_opt.canonical_text().into_bytes(),
            "traced canonical report diverged: {}",
            &ctx
        );
        prop_assert_eq!(traced_ref, traced_opt, "report structs diverged: {}", &ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PR 9's dynamic-fleet extension of the router property: with an
    /// autoscaler breathing replicas up and down and a seeded
    /// `FailurePlan` killing replicas mid-run, the optimized router
    /// still matches `with_reference_paths(true)` byte for byte —
    /// canonical report and decision-trace JSONL — at every step-thread
    /// count, across arbitrary traces × failure plans × autoscaler
    /// on/off × all four load-balance policies. Request conservation
    /// (`admitted + rejected == offered`, every admission completes)
    /// holds under every kill schedule.
    #[test]
    fn dynamic_fleet_matches_reference_and_conserves(
        trace in trace_strategy(),
        lb in 0usize..4,
        replicas in 2usize..5,
        kills in 0usize..2,
        autoscale in 0usize..2,
        plan_seed in 0u64..1024,
        threads in 1usize..4,
    ) {
        let base = config(1, 0, true, true);
        let horizon = trace.duration().max(1.0);
        let mut cfg = RouterConfig::homogeneous(base, replicas)
            .with_lb(lb_policy(lb))
            .with_step_threads(threads);
        let kills = kills.min(replicas - 1);
        if kills > 0 {
            cfg = cfg.with_failures(FailurePlan::seeded(plan_seed, kills, replicas, horizon));
        }
        if autoscale == 1 {
            cfg = cfg.with_autoscaler(AutoscalerCfg::new(1).with_cadence(0.5, 2.0));
        }
        let optimized = Router::new(cfg.clone());
        let reference = Router::new(cfg.clone()).with_reference_paths(true);
        let serial = Router::new(cfg.with_step_threads(1));
        let ctx = format!(
            "lb={} replicas={replicas} kills={kills} autoscale={autoscale} \
             plan_seed={plan_seed} threads={threads} n={}",
            lb_policy(lb).name(),
            trace.len(),
        );

        let plain_ref = reference.run(&trace);
        let plain_opt = optimized.run(&trace);
        let plain_serial = serial.run(&trace);
        prop_assert_eq!(
            plain_ref.canonical_text().into_bytes(),
            plain_opt.canonical_text().into_bytes(),
            "untraced canonical report diverged from reference: {}",
            &ctx
        );
        prop_assert_eq!(
            plain_serial.canonical_text().into_bytes(),
            plain_opt.canonical_text().into_bytes(),
            "canonical report diverged between 1 and {} step threads: {}",
            threads,
            &ctx
        );
        prop_assert_eq!(
            plain_opt.fleet.admitted + plain_opt.fleet.rejected,
            plain_opt.fleet.arrived,
            "conservation violated: {}",
            &ctx
        );
        prop_assert_eq!(plain_opt.fleet.arrived, trace.len(), "arrivals lost: {}", &ctx);
        prop_assert_eq!(
            plain_opt.fleet.completed,
            plain_opt.fleet.admitted,
            "an admitted request neither finished nor was re-rejected: {}",
            &ctx
        );

        let mut sink_ref = MemorySink::new();
        let mut sink_opt = MemorySink::new();
        let traced_ref = reference.run_traced(&trace, &mut sink_ref);
        let traced_opt = optimized.run_traced(&trace, &mut sink_opt);
        prop_assert_eq!(
            sink_ref.to_jsonl().into_bytes(),
            sink_opt.to_jsonl().into_bytes(),
            "event stream diverged: {}",
            &ctx
        );
        prop_assert_eq!(traced_ref, traced_opt, "report structs diverged: {}", &ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `pick_into`'s cached score bases and packed-key partial sort
    /// reproduce the reference comparator exactly — walked like the
    /// scheduler walks it: one persistent scratch across a growing
    /// decode range, stepping through drift-epoch boundaries (the
    /// default epoch is 32 steps), with `k` free to exceed the range.
    #[test]
    fn pick_into_matches_pick_across_decode_walks(
        seed in 0u64..(1 << 60),
        start in 1usize..257,
        steps in 1usize..48,
        k in 0usize..129,
    ) {
        let model = GlobalSetModel::new(seed);
        let mut scratch = TopKScratch::default();
        let mut out = Vec::new();
        for j in 0..steps {
            let seq_len = start + j;
            let range_end = seq_len - 1;
            model.pick_into(k, range_end, j, seq_len, &mut scratch, &mut out);
            prop_assert_eq!(
                &out,
                &model.pick(k, range_end, j, seq_len),
                "seed={} j={} k={} range_end={}",
                seed,
                j,
                k,
                range_end
            );
        }
    }

    /// Reusing a dirty `NeededPartition` buffer yields exactly what the
    /// allocating variant yields, for arbitrary placements and needed
    /// sets (including out-of-range indices, which land in `missing`).
    #[test]
    fn partition_needed_into_matches_allocating_variant(
        locations in collection::vec(0usize..3, 0..96),
        needed in collection::vec(0usize..128, 0..64),
    ) {
        let mut store = TokenKvStore::new(1024);
        for l in locations {
            store.append(match l {
                0 => Location::Gpu,
                1 => Location::Cpu,
                _ => Location::Deleted,
            });
        }
        // Dirty the reused buffer first so stale contents would show.
        let mut reused = NeededPartition::default();
        store.partition_needed_into(&[0, 1, 2, 3, 999], &mut reused);
        store.partition_needed_into(&needed, &mut reused);
        prop_assert_eq!(reused, store.partition_needed(&needed));
    }
}
