//! Integration tests of the admission-API split: `AdmissionPolicy`
//! stays the pure KV-pricing model, `QueueDiscipline` owns ordering and
//! preemption. The invariants pinned here:
//!
//! * FCFS (the default) reproduces the pre-split golden `ServeReport`
//!   fixtures byte-for-byte, and an explicit `with_discipline(fcfs)`
//!   equals the default-constructed config byte-for-byte;
//! * every discipline conserves requests — `admitted + rejected ==
//!   offered`, and preempted requests are re-queued, never lost;
//! * SJF with aging admits every request eventually (no starvation),
//!   and size-aware orderings actually break FCFS's head-of-line block;
//! * discipline stats appear in the canonical text iff a non-FCFS
//!   discipline ran, so pre-split fixtures cannot see them.

use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, QueueDiscipline, Router, RouterConfig, ServeConfig,
    ServeEngine, Trace, TraceEntry,
};
use alisa_workloads::LengthModel;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {path}: {e}"))
}

fn v100_config(policy: AdmissionPolicy) -> ServeConfig {
    ServeConfig::new(ModelConfig::opt_6_7b(), HardwareSpec::v100_16gb(), policy)
}

fn heavy_trace(rate: f64, n: usize, seed: u64) -> Trace {
    Trace::generate(
        &ArrivalProcess::Poisson { rate },
        &LengthModel::heavy_tailed(),
        n,
        seed,
    )
}

fn all_disciplines() -> [QueueDiscipline; 4] {
    [
        QueueDiscipline::fcfs(),
        QueueDiscipline::sjf().with_aging(5.0),
        QueueDiscipline::best_fit(),
        QueueDiscipline::preemptive_sjf()
            .with_aging(5.0)
            .with_patience(0.5),
    ]
}

/// A giant request that nearly fills the budget, then a stream of cheap
/// ones arriving while it decodes — the head-of-line shape.
fn giant_then_shorts(shorts: usize) -> Trace {
    let mut entries = vec![TraceEntry::single_shot(0.0, 2048, 1024)];
    for i in 0..shorts {
        entries.push(TraceEntry::single_shot(0.5 + 0.25 * i as f64, 64, 32));
    }
    Trace::new(entries).expect("valid trace")
}

/// The explicit FCFS discipline is the default: byte-identical reports
/// on the pre-split golden fixtures (same config and traces as
/// `precision_backcompat.rs`).
#[test]
fn fcfs_reproduces_pre_split_golden_fixtures() {
    for seed in [7u64, 42] {
        let trace = Trace::generate(
            &ArrivalProcess::Poisson { rate: 6.0 },
            &LengthModel::alpaca().with_max_output(48),
            50,
            seed,
        );
        let cfg = v100_config(AdmissionPolicy::alisa()).with_discipline(QueueDiscipline::fcfs());
        let report = ServeEngine::new(cfg).run(&trace);
        assert_eq!(
            report.canonical_text(),
            golden(&format!("serve_int8_seed{seed}.txt")),
            "explicit FCFS diverged from the pre-discipline run (seed {seed})"
        );
    }
}

/// `with_discipline(fcfs)` equals the default-constructed config
/// byte-for-byte, for every admission policy and load level.
#[test]
fn explicit_fcfs_equals_default_config() {
    for policy in [
        AdmissionPolicy::alisa(),
        AdmissionPolicy::vllm(),
        AdmissionPolicy::flexgen(),
    ] {
        for rate in [2.0, 8.0] {
            let trace = heavy_trace(rate, 50, 3);
            let default = ServeEngine::new(v100_config(policy)).run(&trace);
            let explicit =
                ServeEngine::new(v100_config(policy).with_discipline(QueueDiscipline::fcfs()))
                    .run(&trace);
            assert_eq!(
                default.canonical_text().into_bytes(),
                explicit.canonical_text().into_bytes(),
                "{} at {rate} req/s",
                policy.name()
            );
        }
    }
}

/// Request conservation under every discipline, loaded and overloaded,
/// with and without timeouts: admitted + rejected == offered, and
/// without a timeout every admitted request runs to completion
/// (preempted requests are re-queued and finish, never dropped).
#[test]
fn every_discipline_conserves_requests() {
    for discipline in all_disciplines() {
        for (rate, timeout) in [(4.0, f64::INFINITY), (20.0, 2.0)] {
            let cfg = v100_config(AdmissionPolicy::alisa())
                .with_discipline(discipline)
                .with_queue_timeout(timeout);
            let r = ServeEngine::new(cfg).run(&heavy_trace(rate, 60, 11));
            assert_eq!(r.arrived, 60, "{}", discipline.name());
            assert_eq!(
                r.admitted + r.rejected,
                r.arrived,
                "{} at {rate} req/s: admitted {} + rejected {} != arrived {}",
                discipline.name(),
                r.admitted,
                r.rejected,
                r.arrived
            );
            assert_eq!(
                r.completed,
                r.admitted,
                "{}: every admitted request must finish — preemption re-queues, never drops",
                discipline.name()
            );
        }
    }
}

/// SJF breaks the head-of-line block: with a giant decoding and cheap
/// requests queued behind a giant arrival, size-aware ordering must
/// finish the shorts sooner than FCFS does.
#[test]
fn sjf_breaks_head_of_line_blocking() {
    // Two giants whose dense reservations cannot coexist on a
    // V100-16GB (each ~1.9 GiB of a ~3.6 GiB budget, plus activations
    // and the short stream), so the second giant blocks the FCFS queue
    // while the first one decodes.
    let mut entries = vec![
        TraceEntry::single_shot(0.0, 3000, 800),
        TraceEntry::single_shot(0.1, 3000, 800),
    ];
    for i in 0..20 {
        entries.push(TraceEntry::single_shot(0.2 + 0.1 * i as f64, 64, 32));
    }
    let trace = Trace::new(entries).unwrap();
    let run = |d: QueueDiscipline| {
        ServeEngine::new(v100_config(AdmissionPolicy::vllm()).with_discipline(d)).run(&trace)
    };
    let fcfs = run(QueueDiscipline::fcfs());
    let sjf = run(QueueDiscipline::sjf());
    assert!(
        sjf.ttft.p90 < fcfs.ttft.p90,
        "SJF must admit the cheap stream past the queued giant: p90 ttft {} vs {}",
        sjf.ttft.p90,
        fcfs.ttft.p90
    );
    assert_eq!(sjf.completed, fcfs.completed, "both drain everything");
}

/// Aging bounds starvation: under pure SJF a giant is overtaken by
/// every later short request; with a finite aging horizon its key
/// decays to zero and it must be admitted no later than under pure
/// SJF — and within the horizon once the queue pressure allows.
#[test]
fn aging_admits_the_giant_eventually() {
    let trace = giant_then_shorts(200);
    let admit_time = |aging: f64| {
        let cfg = v100_config(AdmissionPolicy::vllm())
            .with_discipline(QueueDiscipline::sjf().with_aging(aging));
        let r = ServeEngine::new(cfg).run(&trace);
        assert_eq!(r.completed, r.arrived, "nothing starves in a finite trace");
        r
    };
    let pure = admit_time(f64::INFINITY);
    let aged = admit_time(2.0);
    // Everything completes either way (finite trace), but the aged run
    // must not serve the giant any later than pure SJF does.
    assert!(
        aged.e2e.max <= pure.e2e.max + 1e-9,
        "aging must not delay the most-starved request: {} vs {}",
        aged.e2e.max,
        pure.e2e.max
    );
}

/// Preemption engages under pressure, counts correctly, and loses
/// nothing: the canonical report's discipline line matches the
/// per-request preemption counters.
#[test]
fn preemption_counts_and_conserves() {
    let cfg = v100_config(AdmissionPolicy::alisa()).with_discipline(
        QueueDiscipline::preemptive_sjf()
            .with_aging(5.0)
            .with_patience(0.1),
    );
    let r = ServeEngine::new(cfg).run(&heavy_trace(8.0, 80, 42));
    let stats = r.discipline.as_ref().expect("non-FCFS run must report");
    assert_eq!(stats.discipline, "preemptive-sjf");
    assert!(
        stats.preemptions > 0,
        "heavy overload must trigger eviction"
    );
    assert!(stats.preempted_requests > 0);
    assert!(stats.preempted_requests <= stats.preemptions);
    assert_eq!(r.admitted + r.rejected, r.arrived);
    assert_eq!(r.completed, r.admitted, "preempted requests still finish");
    assert!(
        r.canonical_text().contains("discipline preemptive-sjf"),
        "stats must surface in the canonical text"
    );
}

/// The discipline line appears iff a non-FCFS discipline ran — FCFS
/// reports (and hence all pre-split fixtures) never see it.
#[test]
fn discipline_stats_are_gated_to_non_fcfs() {
    let trace = heavy_trace(4.0, 30, 9);
    for discipline in all_disciplines() {
        let cfg = v100_config(AdmissionPolicy::alisa()).with_discipline(discipline);
        let r = ServeEngine::new(cfg).run(&trace);
        assert_eq!(
            r.discipline.is_some(),
            !discipline.is_fcfs(),
            "{}",
            discipline.name()
        );
        assert_eq!(
            r.canonical_text().contains("\ndiscipline "),
            !discipline.is_fcfs(),
            "{}",
            discipline.name()
        );
    }
}

/// Determinism: byte-identical reports per (config, trace) for every
/// discipline, including the preemptive one.
#[test]
fn disciplines_are_deterministic() {
    for discipline in all_disciplines() {
        let run = || {
            let cfg = v100_config(AdmissionPolicy::alisa())
                .with_discipline(discipline)
                .with_queue_timeout(3.0);
            ServeEngine::new(cfg).run(&heavy_trace(10.0, 70, 0xD15C))
        };
        assert_eq!(
            run().canonical_text().into_bytes(),
            run().canonical_text().into_bytes(),
            "{}",
            discipline.name()
        );
    }
}

/// The discipline threads through the router: a 1-replica fleet under
/// any discipline reproduces the single engine byte-for-byte, and a
/// multi-replica fleet conserves requests under every load-balance
/// policy × discipline combination.
#[test]
fn router_threads_disciplines() {
    use alisa_serve::LoadBalancePolicy;
    let trace = heavy_trace(6.0, 50, 21);
    for discipline in all_disciplines() {
        let cfg = v100_config(AdmissionPolicy::alisa()).with_discipline(discipline);
        // 1-replica fleet == engine, byte for byte.
        let engine = ServeEngine::new(cfg.clone()).run(&trace);
        let fleet = Router::new(RouterConfig::homogeneous(cfg.clone(), 1)).run(&trace);
        assert_eq!(
            fleet.replicas[0].canonical_text().into_bytes(),
            engine.canonical_text().into_bytes(),
            "{}",
            discipline.name()
        );
        // Multi-replica conservation under every LB policy.
        for lb in [
            LoadBalancePolicy::RoundRobin,
            LoadBalancePolicy::LeastOutstanding,
            LoadBalancePolicy::LeastKvPressure,
            LoadBalancePolicy::Sticky { sessions: 6 },
        ] {
            let r = Router::new(RouterConfig::homogeneous(cfg.clone(), 3).with_lb(lb)).run(&trace);
            assert_eq!(r.fleet.arrived, 50, "{} {}", discipline.name(), lb.name());
            assert_eq!(
                r.fleet.admitted + r.fleet.rejected,
                r.fleet.arrived,
                "{} {}",
                discipline.name(),
                lb.name()
            );
            assert_eq!(
                r.fleet.completed,
                r.fleet.admitted,
                "{} {}",
                discipline.name(),
                lb.name()
            );
        }
    }
}

/// Disaggregated tiers never preempt (a handed-off decode request
/// cannot re-prefill on a decode-only replica), but the fleet still
/// conserves and completes under a preemptive discipline.
#[test]
fn disaggregation_is_preemption_safe() {
    let cfg = v100_config(AdmissionPolicy::alisa()).with_discipline(
        QueueDiscipline::preemptive_sjf()
            .with_aging(5.0)
            .with_patience(0.1),
    );
    let router = Router::new(RouterConfig::homogeneous(cfg, 3).with_disagg(1));
    let trace = heavy_trace(6.0, 40, 5);
    let r = router.run(&trace);
    assert_eq!(r.fleet.admitted + r.fleet.rejected, 40);
    assert_eq!(r.fleet.completed, r.fleet.admitted);
    assert!(r.handoffs > 0, "the disagg pipeline must still flow");
    let stats = r.fleet.discipline.as_ref().expect("non-FCFS fleet reports");
    assert_eq!(
        stats.preemptions, 0,
        "disaggregated tiers must never evict mid-flight requests"
    );
}

/// Preemptive SJF must not regress goodput vs FCFS under the
/// heavy-tailed overload it is built for (the fig17 gate, pinned as a
/// test at one operating point).
#[test]
fn preemptive_sjf_beats_fcfs_at_saturation() {
    let timeout = 5.0 * v100_config(AdmissionPolicy::alisa()).slo.ttft_s;
    let trace = heavy_trace(8.0, 100, 42);
    let run = |d: QueueDiscipline| {
        let cfg = v100_config(AdmissionPolicy::alisa())
            .with_discipline(d)
            .with_queue_timeout(timeout);
        ServeEngine::new(cfg).run(&trace)
    };
    let fcfs = run(QueueDiscipline::fcfs());
    let pre = run(QueueDiscipline::preemptive_sjf()
        .with_aging(timeout)
        .with_patience(timeout / 5.0));
    assert!(
        pre.goodput_rps >= fcfs.goodput_rps,
        "preemptive SJF ({:.3} req/s) must not lose to FCFS ({:.3} req/s)",
        pre.goodput_rps,
        fcfs.goodput_rps
    );
}
