//! Online serving walkthrough: put the paper's systems behind a live
//! request stream and watch admission control decide the outcome.
//!
//! Three acts: (1) a steady Poisson load near vLLM's saturation point,
//! (2) the same average load delivered in bursts, (3) a closed-loop
//! client population. One SLO, derived from the hardware, grades all
//! three policies.
//!
//! ```sh
//! cargo run --release --example online_serving
//! ```

use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, ClosedLoopCfg, ServeConfig, ServeEngine, Trace,
};
use alisa_workloads::LengthModel;

fn main() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_16gb();
    let lengths = LengthModel::alpaca();
    let seed = 2024;
    let n = 120;

    let base = ServeConfig::new(model.clone(), hw.clone(), AdmissionPolicy::alisa());
    println!("model:    {model}");
    println!("hardware: {hw}");
    println!(
        "SLO:      ttft <= {:.2}s, tbt <= {:.0}ms (hardware-derived)\n",
        base.slo.ttft_s,
        base.slo.tbt_s * 1e3
    );

    let policies = [
        AdmissionPolicy::alisa(),
        AdmissionPolicy::vllm(),
        AdmissionPolicy::flexgen(),
    ];

    let scenarios: Vec<(&str, ArrivalProcess)> = vec![
        (
            "steady poisson @ 4 req/s",
            ArrivalProcess::Poisson { rate: 4.0 },
        ),
        (
            "bursty @ 4 req/s avg (8x bursts)",
            ArrivalProcess::Bursty {
                rate: 4.0,
                burst: 8.0,
                on_frac: 0.25,
                period_s: 20.0,
            },
        ),
        (
            "closed loop, 24 clients",
            ArrivalProcess::ClosedLoop {
                clients: 24,
                think_s: 1.0,
            },
        ),
    ];

    for (label, process) in scenarios {
        println!("== {label} ==");
        let trace = Trace::generate(&process, &lengths, n, seed);
        for policy in policies {
            let mut cfg = ServeConfig::new(model.clone(), hw.clone(), policy)
                .with_queue_timeout(5.0 * base.slo.ttft_s);
            if let ArrivalProcess::ClosedLoop { clients, think_s } = process {
                cfg = cfg.with_closed_loop(ClosedLoopCfg {
                    clients,
                    think_s,
                    seed,
                });
            }
            let report = ServeEngine::new(cfg).run(&trace);
            println!("  {}", report.summary());
        }
        println!();
    }

    println!(
        "takeaway: same GPU, same SLO — ALISA's sparse KV reservation \
         admits the batch the dense policies must refuse."
    );
}
