//! Multi-replica serving walkthrough: one router, four V100 replicas,
//! and the load-balancing / disaggregation knobs that decide how far a
//! fleet stretches.
//!
//! Three acts: (1) a rate that saturates a single replica is replayed
//! against growing fleet sizes, (2) the four load-balancing policies
//! face a bursty load at fixed fleet size, (3) the same fleet is split
//! into prefill and decode tiers, with every KV handoff charged through
//! the host-staged transfer model.
//!
//! ```sh
//! cargo run --release --example multi_replica_serving
//! ```

use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, LoadBalancePolicy, Router, RouterConfig, ServeConfig, Trace,
};
use alisa_workloads::LengthModel;

fn main() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_16gb();
    let lengths = LengthModel::alpaca();
    let seed = 2024;
    let n = 120;

    let base = ServeConfig::new(model.clone(), hw.clone(), AdmissionPolicy::alisa());
    let timeout = 5.0 * base.slo.ttft_s;
    let replica = base.clone().with_queue_timeout(timeout);
    println!("model:    {model}");
    println!("hardware: {hw} (per replica)");
    println!(
        "SLO:      ttft <= {:.2}s, tbt <= {:.0}ms (hardware-derived)\n",
        base.slo.ttft_s,
        base.slo.tbt_s * 1e3
    );

    // -- Act 1: scale-out. 16 req/s crushes one replica; watch the
    // fleet absorb it.
    println!("== scale-out @ 16 req/s (ALISA admission, least-outstanding) ==");
    let trace = Trace::generate(&ArrivalProcess::Poisson { rate: 16.0 }, &lengths, n, seed);
    for replicas in [1usize, 2, 4] {
        let report = Router::new(
            RouterConfig::homogeneous(replica.clone(), replicas)
                .with_lb(LoadBalancePolicy::LeastOutstanding),
        )
        .run(&trace);
        println!("  {}", report.summary());
    }

    // -- Act 2: load balancing under bursts. Sticky affinity pins
    // sessions (future prefix reuse); the load-aware policies spread
    // the waves.
    println!("\n== load balancing @ 12 req/s avg, 8x bursts, 4 replicas ==");
    let bursty = Trace::generate(
        &ArrivalProcess::Bursty {
            rate: 12.0,
            burst: 8.0,
            on_frac: 0.25,
            period_s: 10.0,
        },
        &lengths,
        n,
        seed,
    );
    for lb in [
        LoadBalancePolicy::RoundRobin,
        LoadBalancePolicy::LeastOutstanding,
        LoadBalancePolicy::LeastKvPressure,
        LoadBalancePolicy::Sticky { sessions: 16 },
    ] {
        let report = Router::new(
            RouterConfig::homogeneous(replica.clone(), 4)
                .with_lb(lb)
                .with_requeue(),
        )
        .run(&bursty);
        println!("  {}", report.summary());
    }

    // -- Act 3: prefill/decode disaggregation. Dedicated prefill
    // replicas keep prompt bursts out of the decode batch; the price is
    // a host-staged KV transfer per handoff.
    println!("\n== unified vs 2P+2D disaggregation @ 16 req/s, 4 replicas ==");
    let unified = Router::new(RouterConfig::homogeneous(replica.clone(), 4)).run(&trace);
    let disagg = Router::new(RouterConfig::homogeneous(replica, 4).with_disagg(2)).run(&trace);
    println!("  unified | {}", unified.fleet.summary());
    println!(
        "  disagg  | {} ({} KV handoffs)",
        disagg.fleet.summary(),
        disagg.handoffs
    );

    println!(
        "\ntakeaway: sparsity-aware admission sets the per-GPU ceiling; \
         the router's dispatch and tiering decide how close the fleet gets to N x that ceiling."
    );
}
