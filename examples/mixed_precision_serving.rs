//! Mixed-precision KV walkthrough: price each cache-state region at its
//! own bit width and watch where the bytes (and the goodput) go.
//!
//! The paper's §V-B switch is all-or-nothing: INT8 for every offloaded
//! token or FP16 for everything. A [`PrecisionPolicy`] splits the cache
//! into regions — GPU-resident hot window, CPU-resident sparse
//! remainder (warm share + cold tail), and in-flight replica handoffs —
//! and assigns each its own precision. This example walks the axis:
//!
//! 1. byte accounting per region for one decode-heavy request,
//! 2. a single-GPU serving comparison at a saturating arrival rate,
//! 3. a disaggregated 3-replica fleet where quantized handoffs shrink
//!    the prefill→decode transfer.
//!
//! ```sh
//! cargo run --release --example mixed_precision_serving
//! ```

use alisa::{KvPrecision, PrecisionPolicy};
use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, Router, RouterConfig, ServeConfig, ServeEngine, Trace,
};
use alisa_workloads::LengthModel;

fn main() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_16gb();
    let lengths = LengthModel::alpaca();
    let seed = 2026;

    let configs: [(&str, PrecisionPolicy); 4] = [
        ("fp16-everywhere", PrecisionPolicy::fp16()),
        ("flat-int8 (paper SS V-B)", PrecisionPolicy::int8()),
        ("mixed (int4 cold tail)", PrecisionPolicy::mixed()),
        (
            "aggressive (int4 offload)",
            PrecisionPolicy::int8()
                .with_cpu(KvPrecision::Int4)
                .with_cold_tail(0.5, KvPrecision::Int4)
                .with_handoff(KvPrecision::Int4),
        ),
    ];

    // ---- 1. Where do one request's KV bytes go?
    println!("== per-region bytes for one 640-token request (80% sparsity) ==");
    let fp16_set = AdmissionPolicy::alisa().kv_working_set_fp16(&model, 640);
    println!("working set at FP16: {:.1} MiB", mib(fp16_set));
    for (name, p) in &configs {
        println!(
            "  {name:<26} gpu {:>7.1} MiB | offloaded/link {:>6.1} MiB | handoff {:>6.1} MiB",
            mib(p.gpu_bytes(fp16_set)),
            mib(p.cpu_bytes(fp16_set)),
            mib(p.handoff_bytes(fp16_set)),
        );
    }

    // ---- 2. Single GPU under a saturating Poisson load.
    println!("\n== single V100, poisson @ 8 req/s, 120 requests ==");
    let trace = Trace::generate(&ArrivalProcess::Poisson { rate: 8.0 }, &lengths, 120, seed);
    for (name, p) in &configs {
        let policy = AdmissionPolicy::Alisa {
            sparsity: 0.8,
            precision: *p,
        };
        let cfg = ServeConfig::new(model.clone(), hw.clone(), policy);
        let r = ServeEngine::new(cfg).run(&trace);
        println!(
            "  {name:<26} goodput {:>6.3} r/s | slo {:>5.1}% | p99 ttft {:>6.2}s",
            r.goodput_rps,
            100.0 * r.slo_attainment,
            r.ttft.p99
        );
    }

    // ---- 3. Disaggregated fleet: the handoff precision now matters.
    println!("\n== 1 prefill + 2 decode replicas, poisson @ 6 req/s ==");
    let trace = Trace::generate(&ArrivalProcess::Poisson { rate: 6.0 }, &lengths, 90, seed);
    for (name, p) in &configs {
        let policy = AdmissionPolicy::Alisa {
            sparsity: 0.8,
            precision: *p,
        };
        let cfg = ServeConfig::new(model.clone(), hw.clone(), policy);
        let engine = ServeEngine::new(cfg.clone());
        let router = Router::new(RouterConfig::homogeneous(cfg, 3).with_disagg(1));
        let r = router.run(&trace);
        println!(
            "  {name:<26} goodput {:>6.3} r/s | {} handoffs x {:>6.1} MiB @ {:>5.1} ms",
            r.fleet.goodput_rps,
            r.handoffs,
            mib(engine.kv_handoff_bytes(640)),
            engine.kv_handoff_time(640) * 1e3,
        );
    }
    println!("\n(the cold tail trims offload traffic a flat INT8 switch cannot reach; FP16-everywhere and flat-INT8 reproduce the legacy boolean exactly)");
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 20) as f64
}
