//! Offline plan tuning: how ALISA's Eq. 3–6 optimizer picks `{α, β, p2}`
//! per workload, and what each knob buys.
//!
//! ```sh
//! cargo run --release --example scheduler_tuning
//! ```

use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_sched::{AlisaScheduler, InferenceSystem, Plan, PlanOptimizer, Workload};

fn main() {
    let model = ModelConfig::opt_13b();
    let hw = HardwareSpec::for_model_params(model.params());
    println!("model: {model}\nhardware: {hw}\n");

    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>12} {:>12}",
        "workload", "alpha", "beta", "p2_frac", "time (s)", "tok/s"
    );
    for wl in [
        Workload::new(8, 128, 256),
        Workload::new(32, 128, 512),
        Workload::new(64, 128, 512),
    ] {
        let base = AlisaScheduler::new(0.8, true);
        let (plan, report) = PlanOptimizer::default().optimize(&base, &model, &hw, &wl);
        println!(
            "{:<24} {:>8.2} {:>8.2} {:>8.2} {:>12.1} {:>12.1}",
            wl.to_string(),
            plan.alpha,
            plan.beta,
            plan.p2_frac,
            report.total_time(),
            report.throughput()
        );
    }

    // What the knobs do, one at a time, on the heaviest workload.
    let wl = Workload::new(64, 128, 512);
    println!("\nknob sweep on {wl}:");
    println!("{:<40} {:>12}", "plan", "time (s)");
    for (label, plan) in [
        (
            "eager offload (a=0.5), no recompute",
            Plan {
                alpha: 0.5,
                beta: 0.0,
                p2_frac: 2.0,
            },
        ),
        (
            "lazy offload (a=0.95), no recompute",
            Plan {
                alpha: 0.95,
                beta: 0.0,
                p2_frac: 2.0,
            },
        ),
        (
            "lazy + recompute half (b=0.5, p2=0.75)",
            Plan {
                alpha: 0.95,
                beta: 0.5,
                p2_frac: 0.75,
            },
        ),
        (
            "lazy + aggressive recompute (b=0.8)",
            Plan {
                alpha: 0.95,
                beta: 0.8,
                p2_frac: 0.5,
            },
        ),
    ] {
        let r = AlisaScheduler::new(0.8, true)
            .with_plan(plan)
            .run(&model, &hw, &wl);
        let t = if r.outcome.is_completed() {
            format!("{:.1}", r.total_time())
        } else {
            "OOM".to_string()
        };
        println!("{label:<40} {t:>12}");
    }
    println!("\nphase boundaries and per-phase costs appear in `fig12_inference_breakdown`.");
}
