//! Multi-turn session serving walkthrough: real session ids in the
//! trace, sticky routing, and cross-request prefix KV reuse.
//!
//! Three acts: (1) a heavy-tailed conversation trace is generated and
//! its shape printed, (2) the same trace is served with and without
//! session-KV retention on one replica — the reuse column is prefill
//! work that never ran, (3) a sticky 2-replica fleet is compared
//! against round-robin: affinity is what keeps a follow-up turn landing
//! where its prefix KV is retained.
//!
//! ```sh
//! cargo run --release --example multi_turn_sessions
//! ```

use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, LoadBalancePolicy, RetentionCfg, Router, RouterConfig,
    ServeConfig, ServeEngine, Trace,
};
use alisa_workloads::SessionModel;

fn main() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_16gb();
    let seed = 2026;

    // -- Act 1: the workload. Most conversations are short; a heavy
    // tail runs deep and accumulates long prefixes.
    let conv = SessionModel::chat().with_max_turns(6);
    let trace = Trace::generate_sessions(&ArrivalProcess::Poisson { rate: 1.0 }, &conv, 40, seed);
    let turns = trace.len();
    let max_prompt = trace
        .entries()
        .iter()
        .map(|e| e.prompt_len)
        .max()
        .unwrap_or(0);
    let reusable: usize = trace.prefix_lens().iter().sum();
    let total_prompt: usize = trace.entries().iter().map(|e| e.prompt_len).sum();
    println!("model:    {model}");
    println!("hardware: {hw}");
    println!(
        "workload: {} sessions -> {turns} turns, longest prompt {max_prompt} tokens",
        trace.session_count()
    );
    println!(
        "          {reusable} of {total_prompt} prompt tokens ({:.0}%) are re-submitted conversation prefix\n",
        100.0 * reusable as f64 / total_prompt as f64
    );

    // -- Act 2: one replica, retention off vs on. Same trace, same
    // policy — the only difference is whether finished turns' KV stays
    // resident for their follow-up.
    println!("== single replica: session-KV retention off vs on ==");
    let base = ServeConfig::new(model.clone(), hw.clone(), AdmissionPolicy::alisa());
    for (tag, cfg) in [
        ("no reuse", base.clone()),
        (
            "reuse",
            base.clone().with_session_reuse(RetentionCfg::half()),
        ),
    ] {
        let report = ServeEngine::new(cfg).run(&trace);
        let reuse = report.reuse.unwrap_or_default();
        println!(
            "  {tag:<9} {} | prefix hits {} ({} ktok of prefill skipped)",
            report.summary(),
            reuse.hits,
            reuse.reused_tokens / 1000
        );
    }

    // -- Act 3: the fleet. Sticky affinity keys on the real session id,
    // so a session's turns return to the replica that retained its
    // prefix; round-robin scatters them and the retained caches rot.
    println!("\n== 2-replica fleet: sticky vs round-robin (both with retention) ==");
    let replica = base.with_session_reuse(RetentionCfg::half());
    for (tag, lb) in [
        ("sticky", LoadBalancePolicy::sticky()),
        ("round-robin", LoadBalancePolicy::RoundRobin),
    ] {
        let report =
            Router::new(RouterConfig::homogeneous(replica.clone(), 2).with_lb(lb)).run(&trace);
        let reuse = report.fleet.reuse.unwrap_or_default();
        println!(
            "  {tag:<12} {} | prefix hits {} / misses {}",
            report.fleet.summary(),
            reuse.hits,
            reuse.misses
        );
    }
    println!("\n(fig16_multi_turn sweeps this comparison across arrival rates and gates on it)");
}
