//! Queue-discipline walkthrough: same KV pricing, four admission
//! orders, one heavy-tailed request mix.
//!
//! `AdmissionPolicy` decides how much HBM a request costs;
//! `QueueDiscipline` decides which queued request gets the next slice
//! of it. On traffic whose length distribution has a giant tail, that
//! ordering is worth real goodput: an FCFS queue regularly has a giant
//! parked at its head while a stream of cheap requests — each of which
//! would fit right now — waits behind it. This example runs the same
//! trace through FCFS, shortest-job-first (aged so nothing starves),
//! best-fit packing, and preemptive SJF (evict the cheapest-to-restart
//! victim for a candidate blocked past its patience), then prints the
//! goodput/tail-latency scoreboard.
//!
//! ```sh
//! cargo run --release --example admission_disciplines
//! ```

use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, QueueDiscipline, ServeConfig, ServeEngine, Trace,
};
use alisa_workloads::LengthModel;

fn main() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_16gb();
    // Alpaca-shaped bodies with a ~10% tail of 6x giants: the shape
    // that makes queue order matter.
    let lengths = LengthModel::heavy_tailed();
    let seed = 2026;
    let n = 120;
    let rate = 6.0;

    let base = ServeConfig::new(model.clone(), hw.clone(), AdmissionPolicy::alisa());
    let timeout = 5.0 * base.slo.ttft_s;
    println!("model:    {model}");
    println!("hardware: {hw}");
    println!(
        "SLO:      ttft <= {:.2}s, tbt <= {:.0}ms (hardware-derived), queue timeout {timeout:.1}s",
        base.slo.ttft_s,
        base.slo.tbt_s * 1e3
    );
    println!(
        "load:     {rate} req/s Poisson, {n} requests, {:.0}% giants at {:.0}x length\n",
        100.0 * lengths.heavy_frac,
        lengths.heavy_mult
    );

    let disciplines = [
        QueueDiscipline::fcfs(),
        QueueDiscipline::sjf().with_aging(timeout),
        QueueDiscipline::best_fit(),
        QueueDiscipline::preemptive_sjf()
            .with_aging(timeout)
            .with_patience(base.slo.ttft_s),
    ];

    let trace = Trace::generate(&ArrivalProcess::Poisson { rate }, &lengths, n, seed);
    println!(
        "{:<16} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "discipline", "goodput", "slo%", "p50 ttft", "p99 ttft", "preempts", "rejected"
    );
    for d in disciplines {
        let cfg = ServeConfig::new(model.clone(), hw.clone(), AdmissionPolicy::alisa())
            .with_queue_timeout(timeout)
            .with_discipline(d);
        let r = ServeEngine::new(cfg).run(&trace);
        let preempts = r.discipline.as_ref().map_or(0, |s| s.preemptions);
        println!(
            "{:<16} {:>8.3} {:>6.1}% {:>8.3}s {:>8.3}s {:>9} {:>9}",
            d.name(),
            r.goodput_rps,
            100.0 * r.slo_attainment,
            r.ttft.p50,
            r.ttft.p99,
            preempts,
            r.rejected
        );
    }

    println!(
        "\nSame pricing model, same trace, same SLO — only the order the\n\
         KV budget is spent in changed. Size-aware orderings route the\n\
         cheap stream around the giants (and preemption reclaims HBM\n\
         from them mid-decode), which is exactly the §V-C scheduler\n\
         lever fig17_admission sweeps across arrival rates."
    );
}
