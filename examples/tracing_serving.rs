//! Observability walkthrough: trace one serving run end to end.
//!
//! Runs an overloaded preemptive-SJF scenario with a [`MemorySink`]
//! attached, then shows the three consumption paths `alisa-obs`
//! offers: (1) a filtered per-request decision timeline — why did
//! request N wait, get preempted, or time out; (2) the metrics
//! registry derived from the same stream, reconciled against the
//! `ServeReport`; (3) export — JSONL for `trace_check` / ad-hoc
//! grepping, and a Chrome trace-event JSON you can drop into
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! ```sh
//! cargo run --release --example tracing_serving
//! ```

use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_serve::{
    AdmissionPolicy, ArrivalProcess, EventKind, MemorySink, MetricsRegistry, QueueDiscipline,
    ServeConfig, ServeEngine, Trace,
};
use alisa_workloads::LengthModel;

fn main() {
    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::v100_16gb();
    println!("model:    {model}\nhardware: {hw}\n");

    // An overloaded heavy-tailed mix under preemptive SJF with a finite
    // queue timeout: the richest decision stream the simulator makes
    // (admissions with pricing, preemptions, timeout rejections).
    let cfg = ServeConfig::new(model, hw, AdmissionPolicy::alisa())
        .with_discipline(
            QueueDiscipline::preemptive_sjf()
                .with_aging(5.0)
                .with_patience(0.1),
        )
        .with_queue_timeout(2.0);
    let trace = Trace::generate(
        &ArrivalProcess::Poisson { rate: 20.0 },
        &LengthModel::heavy_tailed(),
        80,
        42,
    );

    // Attach a sink; `run()` without one is the identical simulation
    // with tracing compiled down to nothing.
    let mut sink = MemorySink::new();
    let report = ServeEngine::new(cfg).run_traced(&trace, &mut sink);
    println!("{}", report.summary());
    println!("captured {} events\n", sink.events().len());

    // (1) Per-request decision timeline: pick the first request that
    // was preempted and print its whole lifecycle.
    let victim = sink.events().iter().find_map(|e| {
        matches!(e.kind, EventKind::Preempted { .. })
            .then_some(e.request)
            .flatten()
    });
    if let Some(id) = victim {
        println!("== decision timeline of request {id} (preempted at least once) ==");
        for ev in sink.for_request(id) {
            println!("  t={:9.4}s  {}", ev.t, ev.to_json());
        }
        println!();
    }

    // (2) The metrics registry is a pure fold over the stream — the
    // report embeds the same dump, so the two views cannot drift.
    let reg = MetricsRegistry::from_events(sink.events());
    println!("== metrics derived from the stream ==");
    print!("{}", reg.canonical_text());
    assert_eq!(
        report.metrics.as_deref(),
        Some(reg.canonical_text().as_str()),
        "the report's metrics section is this registry"
    );
    let preemptions = report.discipline.as_ref().map_or(0, |d| d.preemptions);
    println!(
        "\nreconciled: {} arrived == report {}, {} admitted == report {} + {} re-admissions",
        reg.counter("arrived"),
        report.arrived,
        reg.counter("admitted"),
        report.admitted,
        preemptions,
    );

    // (3) Export: JSONL (one `Event::to_json` per line, what the
    // figure binaries' `--events` flag streams) and a Chrome
    // trace-event JSON for chrome://tracing or ui.perfetto.dev.
    let jsonl = sink.to_jsonl();
    let chrome = alisa_obs::perfetto::chrome_trace(sink.events());
    println!(
        "\nexports: {} JSONL bytes, {} chrome-trace bytes (write them \
         to files to inspect; see docs/OBSERVABILITY.md)",
        jsonl.len(),
        chrome.len()
    );
}
