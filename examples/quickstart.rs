//! Quickstart: run ALISA end-to-end on one workload and compare it with
//! the strongest baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use alisa::Alisa;
use alisa_memsim::HardwareSpec;
use alisa_model::ModelConfig;
use alisa_sched::{FlexGenScheduler, InferenceSystem, VllmScheduler, Workload};

fn main() {
    // The paper's headline configuration: 80% KV sparsity + INT8 KV
    // compression, on the paper's model↦GPU pairing.
    let alisa = Alisa::builder()
        .kv_sparsity(0.8)
        .kv_compression(true)
        .build();

    let model = ModelConfig::opt_6_7b();
    let hw = HardwareSpec::for_model_params(model.params());
    let wl = Workload::alpaca(32); // b=32, s=128, n=512

    println!("model:    {model}");
    println!("hardware: {hw}");
    println!("workload: {wl}\n");

    // Offline plan search (Eq. 3-6), then simulate.
    let (tuned, report) = alisa.optimized_for(&model, &wl);
    println!("{}", report.summary());

    // The baselines the paper compares against.
    for sys in [
        Box::new(FlexGenScheduler::new()) as Box<dyn InferenceSystem>,
        Box::new(VllmScheduler::new()),
    ] {
        let r = sys.run(&model, &hw, &wl);
        println!("{}", r.summary());
        if r.outcome.is_completed() && report.outcome.is_completed() {
            println!(
                "  -> ALISA speedup over {}: {:.2}x",
                sys.name(),
                report.throughput() / r.throughput()
            );
        }
    }

    // The same configuration drives the functional (accuracy) path:
    let cfg = tuned.generation_config();
    println!(
        "\nfunctional path: policy={}, sparsity={:.0}%, quant={:?}",
        cfg.policy,
        cfg.kv_sparsity * 100.0,
        cfg.kv_quant
    );
}
