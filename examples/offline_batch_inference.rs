//! Offline batch inference on Alpaca-like prompts with a *real*
//! (executable) transformer: generate with dense attention, then with
//! ALISA's Sparse Window Attention, and compare outputs and KV usage.
//!
//! ```sh
//! cargo run --release --example offline_batch_inference
//! ```

use alisa::Alisa;
use alisa_attention::policy::PolicyKind;
use alisa_model::engine::{generate, GenerationConfig};
use alisa_model::ModelConfig;
use alisa_workloads::Dataset;

fn main() {
    let alisa = Alisa::builder().kv_sparsity(0.7).build();
    // A laptop-scale functional model whose attention statistics emulate
    // OPT-6.7B (DESIGN.md section 2.1).
    let model = alisa.functional_model(&ModelConfig::opt_6_7b());
    let spec = model.init_spec();
    let corpus = Dataset::Alpaca.spec(
        model.config().vocab_size,
        spec.anchor_count(model.config().vocab_size),
    );

    let batch = 4;
    let prompt_len = 48;
    let new_tokens = 32;
    println!(
        "batch of {batch} Alpaca-like prompts ({prompt_len} tokens) -> {new_tokens} new tokens\n"
    );

    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..batch {
        let prompt = corpus.sequence(i, prompt_len);
        let dense = generate(
            &model,
            &prompt,
            &GenerationConfig {
                max_new_tokens: new_tokens,
                ..GenerationConfig::default()
            },
        );
        let swa_cfg = GenerationConfig {
            max_new_tokens: new_tokens,
            ..alisa.generation_config()
        };
        let swa = generate(&model, &prompt, &swa_cfg);
        // Greedy decoding diverges permanently after one differing
        // token, so the meaningful fidelity metric is the length of the
        // shared prefix.
        let prefix = dense
            .tokens
            .iter()
            .zip(&swa.tokens)
            .take_while(|(a, b)| a == b)
            .count();
        agree += prefix;
        total += new_tokens;
        println!(
            "seq {i}: dense kept all {} tokens/step; SWA kept {:.1} avg; shared prefix {}/{}",
            prompt_len + new_tokens,
            swa.mean_kept,
            prefix,
            new_tokens
        );
    }
    println!(
        "\nmean greedy shared-prefix dense vs SWA@70%: {:.0}% of the continuation\n\
         (KV footprint ~30% of dense; teacher-forced fidelity is what Figure 8 scores)",
        100.0 * agree as f64 / total as f64
    );

    // And with INT8 KV compression on top (full ALISA):
    let full = Alisa::builder()
        .kv_sparsity(0.7)
        .kv_compression(true)
        .build();
    let prompt = corpus.sequence(0, prompt_len);
    let gen = generate(
        &model,
        &prompt,
        &GenerationConfig {
            max_new_tokens: new_tokens,
            ..full.generation_config()
        },
    );
    println!(
        "with INT8 KV compression: generated {} tokens, mean kept {:.1} ({})",
        gen.tokens.len(),
        gen.mean_kept,
        PolicyKind::Swa
    );
}
