//! Long-context retrieval under KV sparsity: the "What is the capital of
//! France?" experiment of the paper's §III-B, run for real.
//!
//! A fact is planted early in a long prompt; the question arrives at the
//! end. Dense attention and SWA answer correctly because the fact's KV
//! entry survives (it is a heavy hitter); a recency window evicts it and
//! fails.
//!
//! ```sh
//! cargo run --release --example long_context_retrieval
//! ```

use alisa_attention::policy::PolicyKind;
use alisa_model::assoc::{AssocModel, AssocSpec};
use alisa_model::engine::{prefill, GenerationConfig};

fn main() {
    let model = AssocModel::build(&AssocSpec::default());
    let v = model.vocab().clone();

    // Prompt: [fact: key 3 -> value] + 60 filler tokens + [query: key 3].
    let key = 3usize;
    let mut prompt = vec![v.fact(key)];
    for t in 0..60 {
        prompt.push(v.filler(t));
    }
    prompt.push(v.query(key));
    let correct = v.value(model.answer(key));

    println!("prompt: fact(key {key}) + 60 filler + query(key {key})");
    println!("ground-truth answer: value token {correct}\n");
    println!(
        "{:<10} {:>10} {:>14} {:>10}",
        "policy", "sparsity", "prediction", "correct?"
    );

    for sparsity in [0.0f32, 0.5, 0.8] {
        for kind in [
            PolicyKind::Dense,
            PolicyKind::Swa,
            PolicyKind::H2o,
            PolicyKind::Local,
        ] {
            if kind == PolicyKind::Dense && sparsity > 0.0 {
                continue;
            }
            let cfg = GenerationConfig::default().with_policy(kind, sparsity);
            let (_state, logits) = prefill(model.model(), &prompt, &cfg);
            // Best value token = the model's answer.
            let best = (0..v.n_vals)
                .map(|j| v.value(j))
                .max_by(|&a, &b| logits[a].partial_cmp(&logits[b]).unwrap())
                .unwrap();
            println!(
                "{:<10} {:>9.0}% {:>14} {:>10}",
                kind.label(),
                sparsity * 100.0,
                best,
                if best == correct { "yes" } else { "NO" }
            );
        }
    }

    println!(
        "\nthe fact token is an attention heavy hitter: SWA's globally-dynamic half\n\
         retains it at any distance, while a sliding window forgets it."
    );
}
